package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Canonical guest memory layout. The code segment holds encoded instructions;
// globals live in the data segment; the heap grows upward from HeapBase via
// the SysAlloc syscall; the stack grows downward from StackTop.
const (
	CodeBase  uint64 = 0x0040_0000
	DataBase  uint64 = 0x1000_0000
	HeapBase  uint64 = 0x2000_0000
	StackTop  uint64 = 0x7fff_0000
	StackSize uint64 = 1 << 20 // reserved stack span checked by the VM
)

// ErrTruncated is returned when decoding runs out of bytes mid-instruction.
var ErrTruncated = errors.New("isa: truncated instruction stream")

// BadOpcodeError reports an undecodable opcode byte, as produced by a fault
// corrupting the code segment or a wild jump into data.
type BadOpcodeError struct {
	PC     uint64
	Opcode uint8
}

func (e *BadOpcodeError) Error() string {
	return fmt.Sprintf("isa: bad opcode %#x at pc %#x", e.Opcode, e.PC)
}

// Encode serializes the instruction into buf, which must be at least
// InstrSize bytes long.
//
// Layout: op(1) rd(1) rs1(1) rs2(1) pad(4) imm(8, little-endian).
func Encode(i Instr, buf []byte) {
	_ = buf[InstrSize-1]
	buf[0] = uint8(i.Op)
	buf[1] = uint8(i.Rd)
	buf[2] = uint8(i.Rs1)
	buf[3] = uint8(i.Rs2)
	buf[4], buf[5], buf[6], buf[7] = 0, 0, 0, 0
	binary.LittleEndian.PutUint64(buf[8:], uint64(i.Imm))
}

// Decode deserializes one instruction from buf. pc is used only for error
// reporting.
func Decode(buf []byte, pc uint64) (Instr, error) {
	if len(buf) < InstrSize {
		return Instr{}, ErrTruncated
	}
	op := Op(buf[0])
	if !op.Valid() {
		return Instr{}, &BadOpcodeError{PC: pc, Opcode: buf[0]}
	}
	i := Instr{
		Op:  op,
		Rd:  Reg(buf[1] & 0x0f),
		Rs1: Reg(buf[2] & 0x0f),
		Rs2: Reg(buf[3] & 0x0f),
		Imm: int64(binary.LittleEndian.Uint64(buf[8:])),
	}
	return i, nil
}

// EncodeProgram serializes a slice of instructions into a contiguous code
// image suitable for loading at CodeBase.
func EncodeProgram(code []Instr) []byte {
	out := make([]byte, len(code)*InstrSize)
	for idx, ins := range code {
		Encode(ins, out[idx*InstrSize:])
	}
	return out
}

// DecodeProgram parses a full code image back into instructions.
func DecodeProgram(image []byte) ([]Instr, error) {
	if len(image)%InstrSize != 0 {
		return nil, ErrTruncated
	}
	code := make([]Instr, 0, len(image)/InstrSize)
	for off := 0; off < len(image); off += InstrSize {
		ins, err := Decode(image[off:off+InstrSize], CodeBase+uint64(off))
		if err != nil {
			return nil, err
		}
		code = append(code, ins)
	}
	return code, nil
}

// Program is a loadable guest program: a code image plus an initialized data
// segment and the entry point address.
type Program struct {
	Name  string
	Entry uint64 // absolute address within the code segment
	Code  []Instr
	Data  []byte // loaded at DataBase
}

// CodeEnd returns the first address past the code segment.
func (p *Program) CodeEnd() uint64 {
	return CodeBase + uint64(len(p.Code))*InstrSize
}

// InstrAt returns the instruction at an absolute code address.
func (p *Program) InstrAt(addr uint64) (Instr, bool) {
	if addr < CodeBase || (addr-CodeBase)%InstrSize != 0 {
		return Instr{}, false
	}
	idx := (addr - CodeBase) / InstrSize
	if idx >= uint64(len(p.Code)) {
		return Instr{}, false
	}
	return p.Code[idx], true
}

// Validate performs static sanity checks: the entry point and all branch
// targets must land on instruction boundaries inside the code segment.
func (p *Program) Validate() error {
	end := p.CodeEnd()
	inCode := func(a uint64) bool {
		return a >= CodeBase && a < end && (a-CodeBase)%InstrSize == 0
	}
	if !inCode(p.Entry) {
		return fmt.Errorf("isa: entry %#x outside code [%#x,%#x)", p.Entry, CodeBase, end)
	}
	for idx, ins := range p.Code {
		if ins.Op.IsBranch() && ins.Op != OpRet && ins.Op != OpHlt {
			if t := uint64(ins.Imm); !inCode(t) {
				return fmt.Errorf("isa: instruction %d (%s) targets %#x outside code", idx, ins, t)
			}
		}
	}
	return nil
}

// Disassemble renders the whole code segment with addresses, one instruction
// per line.
func (p *Program) Disassemble() string {
	var out []byte
	for idx, ins := range p.Code {
		addr := CodeBase + uint64(idx)*InstrSize
		mark := "  "
		if addr == p.Entry {
			mark = "=>"
		}
		out = append(out, fmt.Sprintf("%s %#08x: %s\n", mark, addr, ins)...)
	}
	return string(out)
}
