package isa

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpNames(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{OpNop, "nop"},
		{OpFAdd, "fadd"},
		{OpMov, "mov"},
		{OpCmp, "cmp"},
		{OpSyscall, "syscall"},
		{OpFSt, "fst"},
		{OpCvtIF, "cvtif"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("Op(%d).String() = %q, want %q", tt.op, got, tt.want)
		}
		if got := OpByName(tt.want); got != tt.op {
			t.Errorf("OpByName(%q) = %v, want %v", tt.want, got, tt.op)
		}
	}
}

func TestOpByNameUnknown(t *testing.T) {
	if got := OpByName("definitely-not-an-op"); got != OpInvalid {
		t.Errorf("OpByName(unknown) = %v, want OpInvalid", got)
	}
	if got := OpByName("invalid"); got != OpInvalid {
		t.Errorf("OpByName(\"invalid\") = %v, want OpInvalid", got)
	}
}

func TestOpValid(t *testing.T) {
	if OpInvalid.Valid() {
		t.Error("OpInvalid.Valid() = true")
	}
	if Op(255).Valid() {
		t.Error("Op(255).Valid() = true")
	}
	for op := OpNop; op < opMax; op++ {
		if !op.Valid() {
			t.Errorf("Op %v not valid", op)
		}
	}
}

func TestOpClassification(t *testing.T) {
	tests := []struct {
		op                           Op
		float, branch, cond, memAccs bool
	}{
		{OpFAdd, true, false, false, false},
		{OpAdd, false, false, false, false},
		{OpJmp, false, true, false, false},
		{OpJle, false, true, true, false},
		{OpCall, false, true, false, false},
		{OpRet, false, true, false, false},
		{OpLd, false, false, false, true},
		{OpFSt, true, false, false, true},
		{OpCvtIF, true, false, false, false},
		{OpCvtFI, false, false, false, false},
		{OpPush, false, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.op.IsFloat(); got != tt.float {
			t.Errorf("%v.IsFloat() = %v, want %v", tt.op, got, tt.float)
		}
		if got := tt.op.IsBranch(); got != tt.branch {
			t.Errorf("%v.IsBranch() = %v, want %v", tt.op, got, tt.branch)
		}
		if got := tt.op.IsCondBranch(); got != tt.cond {
			t.Errorf("%v.IsCondBranch() = %v, want %v", tt.op, got, tt.cond)
		}
		if got := tt.op.IsMemAccess(); got != tt.memAccs {
			t.Errorf("%v.IsMemAccess() = %v, want %v", tt.op, got, tt.memAccs)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := Instr{Op: OpAdd, Rd: R3, Rs1: R4, Rs2: R5, Imm: -42}
	var buf [InstrSize]byte
	Encode(ins, buf[:])
	got, err := Decode(buf[:], CodeBase)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got != ins {
		t.Errorf("round trip = %+v, want %+v", got, ins)
	}
}

// Property: every valid instruction survives an encode/decode round trip.
func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	f := func(opRaw, rd, rs1, rs2 uint8, imm int64) bool {
		op := Op(int(opRaw)%(NumOps-1) + 1)
		ins := Instr{Op: op, Rd: Reg(rd & 0x0f), Rs1: Reg(rs1 & 0x0f), Rs2: Reg(rs2 & 0x0f), Imm: imm}
		var buf [InstrSize]byte
		Encode(ins, buf[:])
		got, err := Decode(buf[:], 0)
		return err == nil && got == ins
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, InstrSize-1), 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("short decode err = %v, want ErrTruncated", err)
	}
	buf := make([]byte, InstrSize)
	buf[0] = 0xff
	_, err := Decode(buf, 0x1234)
	var bad *BadOpcodeError
	if !errors.As(err, &bad) {
		t.Fatalf("bad opcode err = %v, want BadOpcodeError", err)
	}
	if bad.PC != 0x1234 || bad.Opcode != 0xff {
		t.Errorf("BadOpcodeError = %+v", bad)
	}
	if !strings.Contains(bad.Error(), "0xff") {
		t.Errorf("error text %q missing opcode", bad.Error())
	}
}

func TestEncodeDecodeProgram(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	code := make([]Instr, 100)
	for i := range code {
		code[i] = Instr{
			Op:  Op(rng.Intn(NumOps-1) + 1),
			Rd:  Reg(rng.Intn(16)),
			Rs1: Reg(rng.Intn(16)),
			Rs2: Reg(rng.Intn(16)),
			Imm: rng.Int63() - rng.Int63(),
		}
	}
	img := EncodeProgram(code)
	if len(img) != len(code)*InstrSize {
		t.Fatalf("image size = %d, want %d", len(img), len(code)*InstrSize)
	}
	back, err := DecodeProgram(img)
	if err != nil {
		t.Fatalf("DecodeProgram: %v", err)
	}
	for i := range code {
		if back[i] != code[i] {
			t.Fatalf("instr %d = %+v, want %+v", i, back[i], code[i])
		}
	}
	if _, err := DecodeProgram(img[:len(img)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated program err = %v, want ErrTruncated", err)
	}
}

func TestProgramInstrAt(t *testing.T) {
	p := &Program{
		Entry: CodeBase,
		Code: []Instr{
			{Op: OpMovI, Rd: R0, Imm: 1},
			{Op: OpHlt},
		},
	}
	if got, ok := p.InstrAt(CodeBase + InstrSize); !ok || got.Op != OpHlt {
		t.Errorf("InstrAt(second) = %+v, %v", got, ok)
	}
	if _, ok := p.InstrAt(CodeBase + 1); ok {
		t.Error("InstrAt(misaligned) should fail")
	}
	if _, ok := p.InstrAt(CodeBase - InstrSize); ok {
		t.Error("InstrAt(below code) should fail")
	}
	if _, ok := p.InstrAt(p.CodeEnd()); ok {
		t.Error("InstrAt(past end) should fail")
	}
}

func TestProgramValidate(t *testing.T) {
	valid := &Program{
		Entry: CodeBase,
		Code: []Instr{
			{Op: OpJmp, Imm: int64(CodeBase + InstrSize)},
			{Op: OpHlt},
		},
	}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}

	badEntry := &Program{Entry: CodeBase + 1, Code: valid.Code}
	if err := badEntry.Validate(); err == nil {
		t.Error("misaligned entry accepted")
	}

	badTarget := &Program{
		Entry: CodeBase,
		Code:  []Instr{{Op: OpJmp, Imm: int64(CodeBase + 999*InstrSize)}},
	}
	if err := badTarget.Validate(); err == nil {
		t.Error("out-of-range branch target accepted")
	}
}

func TestDisassemble(t *testing.T) {
	p := &Program{
		Entry: CodeBase,
		Code: []Instr{
			{Op: OpMovI, Rd: R1, Imm: 7},
			{Op: OpFAdd, Rd: F0, Rs1: F1, Rs2: F2},
			{Op: OpSt, Rs1: R2, Rs2: R3, Imm: 8},
			{Op: OpHlt},
		},
	}
	dis := p.Disassemble()
	for _, want := range []string{"movi r1, 7", "fadd f0, f1, f2", "st [r2+8], r3", "hlt", "=>"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestInstrStringForms(t *testing.T) {
	tests := []struct {
		ins  Instr
		want string
	}{
		{Instr{Op: OpLd, Rd: R1, Rs1: R2, Imm: -8}, "ld r1, [r2-8]"},
		{Instr{Op: OpFLd, Rd: F3, Rs1: R2, Imm: 16}, "fld f3, [r2+16]"},
		{Instr{Op: OpFSt, Rs1: R4, Rs2: F5, Imm: 0}, "fst [r4+0], f5"},
		{Instr{Op: OpCmpI, Rs1: R6, Imm: 3}, "cmpi r6, 3"},
		{Instr{Op: OpCvtFI, Rd: R1, Rs1: F2}, "cvtfi r1, f2"},
		{Instr{Op: OpPush, Rs1: R9}, "push r9"},
		{Instr{Op: OpPop, Rd: R9}, "pop r9"},
		{Instr{Op: OpFPush, Rs1: F2}, "fpush f2"},
		{Instr{Op: OpFPop, Rd: F2}, "fpop f2"},
		{Instr{Op: OpSyscall, Imm: int64(SysExit)}, "syscall 1"},
		{Instr{Op: OpJne, Imm: 0x400000}, "jne 0x400000"},
		{Instr{Op: OpNot, Rd: R1, Rs1: R2}, "not r1, r2"},
		{Instr{Op: OpFNeg, Rd: F1, Rs1: F2}, "fneg f1, f2"},
	}
	for _, tt := range tests {
		if got := tt.ins.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestSyscallNames(t *testing.T) {
	tests := []struct {
		sys  Sys
		want string
		mpi  bool
	}{
		{SysExit, "exit", false},
		{SysAlloc, "alloc", false},
		{SysAssert, "assert", false},
		{SysMPISend, "mpi_send", true},
		{SysMPIReduce, "mpi_reduce", true},
		{SysMPIRank, "mpi_rank", true},
	}
	for _, tt := range tests {
		if got := tt.sys.String(); got != tt.want {
			t.Errorf("Sys(%d).String() = %q, want %q", tt.sys, got, tt.want)
		}
		if got := tt.sys.IsMPI(); got != tt.mpi {
			t.Errorf("%v.IsMPI() = %v, want %v", tt.sys, got, tt.mpi)
		}
		if !tt.sys.Valid() {
			t.Errorf("%v not valid", tt.sys)
		}
	}
	if Sys(0).Valid() || Sys(999).Valid() {
		t.Error("invalid syscall numbers reported valid")
	}
}

func TestDatatype(t *testing.T) {
	if TypeInt64.Size() != 8 || TypeFloat64.Size() != 8 || TypeByte.Size() != 1 {
		t.Error("datatype sizes wrong")
	}
	if Datatype(0).Valid() || Datatype(99).Valid() {
		t.Error("invalid datatype reported valid")
	}
	if TypeFloat64.String() != "float64" {
		t.Errorf("TypeFloat64.String() = %q", TypeFloat64.String())
	}
}

func TestReduceOp(t *testing.T) {
	for _, op := range []ReduceOp{ReduceSum, ReduceMax, ReduceMin} {
		if !op.Valid() {
			t.Errorf("%v not valid", op)
		}
	}
	if ReduceOp(0).Valid() || ReduceOp(9).Valid() {
		t.Error("invalid reduce op reported valid")
	}
	if ReduceSum.String() != "sum" || ReduceMax.String() != "max" || ReduceMin.String() != "min" {
		t.Error("reduce op names wrong")
	}
}
