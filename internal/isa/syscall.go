package isa

import "fmt"

// Sys identifies a guest system call. The syscall number is carried in the
// Imm field of an OpSyscall instruction; integer arguments are passed in
// R1..R6, floating-point arguments in F1..F4; integer results return in R0
// and floating-point results in F0.
type Sys int64

// Guest system calls.
const (
	// SysExit terminates the process with exit code R1.
	SysExit Sys = iota + 1

	// SysPrintInt appends the decimal rendering of R1 plus a newline to the
	// process console.
	SysPrintInt
	// SysPrintFloat appends the rendering of F1 plus a newline to the
	// process console.
	SysPrintFloat
	// SysPrintStr appends len=R2 bytes at address R1 to the process console.
	SysPrintStr

	// SysOutInt appends R1 (8 bytes little-endian) to the process output
	// file. Output files are compared bit-wise against the golden run to
	// classify silent data corruption.
	SysOutInt
	// SysOutFloat appends F1 (8 bytes of IEEE-754 bits) to the output file.
	SysOutFloat
	// SysOutBytes appends len=R2 bytes at address R1 to the output file.
	SysOutBytes

	// SysAlloc reserves R1 bytes of heap and returns the base address in R0.
	SysAlloc

	// SysAssert terminates the process with an assertion failure when R1 is
	// zero. R2 optionally carries a user-defined assertion code. This models
	// program-level checkers such as CLAMR's mass-conservation test.
	SysAssert

	// MPI primitives, forwarded to the attached MPI environment.

	// SysMPIRank returns the caller's rank in R0.
	SysMPIRank
	// SysMPISize returns the communicator size in R0.
	SysMPISize
	// SysMPISend sends count=R2 elements of datatype R3 from buffer R1 to
	// rank R4 with tag R5.
	SysMPISend
	// SysMPIRecv receives count=R2 elements of datatype R3 into buffer R1
	// from rank R4 with tag R5.
	SysMPIRecv
	// SysMPIBarrier blocks until all ranks reach the barrier.
	SysMPIBarrier
	// SysMPIBcast broadcasts count=R2 elements of datatype R3 at buffer R1
	// from root R4 to all ranks.
	SysMPIBcast
	// SysMPIReduce reduces count=R3 elements of datatype R4 from sendbuf R1
	// into recvbuf R2 at root R6 using reduction op R5.
	SysMPIReduce
	// SysMPIAllreduce reduces count=R3 elements of datatype R4 from sendbuf
	// R1 into recvbuf R2 on every rank using reduction op R5.
	SysMPIAllreduce

	sysMax
)

// NumSys is one past the largest valid syscall number.
const NumSys = int64(sysMax)

var sysNames = [...]string{
	SysExit:         "exit",
	SysPrintInt:     "print_int",
	SysPrintFloat:   "print_float",
	SysPrintStr:     "print_str",
	SysOutInt:       "out_int",
	SysOutFloat:     "out_float",
	SysOutBytes:     "out_bytes",
	SysAlloc:        "alloc",
	SysAssert:       "assert",
	SysMPIRank:      "mpi_rank",
	SysMPISize:      "mpi_size",
	SysMPISend:      "mpi_send",
	SysMPIRecv:      "mpi_recv",
	SysMPIBarrier:   "mpi_barrier",
	SysMPIBcast:     "mpi_bcast",
	SysMPIReduce:    "mpi_reduce",
	SysMPIAllreduce: "mpi_allreduce",
}

// String returns the syscall name.
func (s Sys) String() string {
	if s > 0 && int(s) < len(sysNames) && sysNames[s] != "" {
		return sysNames[s]
	}
	return fmt.Sprintf("sys(%d)", int64(s))
}

// Valid reports whether s is a known syscall number.
func (s Sys) Valid() bool { return s > 0 && s < sysMax }

// IsMPI reports whether the syscall is an MPI primitive.
func (s Sys) IsMPI() bool { return s >= SysMPIRank && s <= SysMPIAllreduce }

// Datatype identifies the element type of an MPI buffer.
type Datatype int64

// MPI datatypes.
const (
	TypeInt64 Datatype = iota + 1
	TypeFloat64
	TypeByte
)

// Size returns the element size in bytes, or 0 for an invalid datatype.
func (d Datatype) Size() int64 {
	switch d {
	case TypeInt64, TypeFloat64:
		return 8
	case TypeByte:
		return 1
	}
	return 0
}

// Valid reports whether d is a known datatype.
func (d Datatype) Valid() bool { return d.Size() != 0 }

// String returns the datatype name.
func (d Datatype) String() string {
	switch d {
	case TypeInt64:
		return "int64"
	case TypeFloat64:
		return "float64"
	case TypeByte:
		return "byte"
	}
	return fmt.Sprintf("datatype(%d)", int64(d))
}

// ReduceOp identifies an MPI reduction operator.
type ReduceOp int64

// MPI reduction operators.
const (
	ReduceSum ReduceOp = iota + 1
	ReduceMax
	ReduceMin
)

// Valid reports whether r is a known reduction operator.
func (r ReduceOp) Valid() bool { return r >= ReduceSum && r <= ReduceMin }

// String returns the reduction operator name.
func (r ReduceOp) String() string {
	switch r {
	case ReduceSum:
		return "sum"
	case ReduceMax:
		return "max"
	case ReduceMin:
		return "min"
	}
	return fmt.Sprintf("reduceop(%d)", int64(r))
}
