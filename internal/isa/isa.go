// Package isa defines the guest instruction-set architecture executed by the
// Chaser virtual machine.
//
// The ISA is a 64-bit, fixed-width, RISC-like instruction set with sixteen
// general-purpose integer registers, sixteen IEEE-754 double-precision
// floating-point registers, a flags register written by compare instructions,
// and a small syscall surface (process control, console and data output, heap
// allocation, and MPI primitives). It plays the role that x86 guest code plays
// in the original QEMU/DECAF-based Chaser: fault models target instruction
// opcodes, operands, registers and memory of this ISA.
package isa

import "fmt"

// Reg identifies a register operand. Values 0-15 name general-purpose
// registers R0-R15 or floating-point registers F0-F15 depending on the
// instruction; the interpretation is fixed per opcode.
type Reg uint8

// Register aliases. SP is the stack pointer and FP the conventional frame
// pointer used by the guest compiler's calling convention.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	FP // R14, frame pointer by convention
	SP // R15, stack pointer
)

// Floating point register names (same 0-15 numbering in the FPR file).
const (
	F0 Reg = iota
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
)

// NumRegs is the size of each register file (GPR and FPR).
const NumRegs = 16

// Op is a guest instruction opcode.
type Op uint8

// Guest opcodes. Enumeration starts at one so that the zero value is invalid
// and decodable as corruption.
const (
	OpInvalid Op = iota

	// Control.
	OpNop
	OpHlt // halt: terminate with exit code in R0

	// Integer moves and arithmetic. Rd <- Rs1 op Rs2 unless noted.
	OpMovI // Rd <- Imm
	OpMov  // Rd <- Rs1
	OpAdd
	OpSub
	OpMul
	OpDiv  // raises SIGFPE when divisor is zero
	OpMod  // raises SIGFPE when divisor is zero
	OpAddI // Rd <- Rs1 + Imm
	OpMulI // Rd <- Rs1 * Imm
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNot // Rd <- ^Rs1

	// Floating point moves and arithmetic (registers are FPRs).
	OpFMovI // Fd <- float64 from Imm bits
	OpFMov  // Fd <- Fs1
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg // Fd <- -Fs1

	// Conversions.
	OpCvtIF // Fd <- float64(Rs1)   (Rd names an FPR, Rs1 a GPR)
	OpCvtFI // Rd <- int64(Fs1)     (Rd names a GPR, Rs1 an FPR)

	// Memory. Effective address is Rs1 + Imm.
	OpLd  // Rd <- mem64[Rs1+Imm]
	OpSt  // mem64[Rs1+Imm] <- Rs2
	OpLdB // Rd <- zero-extended mem8[Rs1+Imm]
	OpStB // mem8[Rs1+Imm] <- low byte of Rs2
	OpFLd // Fd <- memf64[Rs1+Imm]      (Rs1 is a GPR)
	OpFSt // memf64[Rs1+Imm] <- Fs2     (Rs1 a GPR, Rs2 an FPR)

	// Compares: set the flags register to -1, 0 or +1.
	OpCmp  // flags <- sign(Rs1 - Rs2)
	OpCmpI // flags <- sign(Rs1 - Imm)
	OpFCmp // flags <- sign(Fs1 - Fs2); NaN compares as +1

	// Branches. Imm is the absolute target address in the code segment.
	OpJmp
	OpJe
	OpJne
	OpJl
	OpJle
	OpJg
	OpJge

	// Procedures and stack.
	OpCall // push return address; jump to Imm
	OpRet  // pop return address; jump
	OpPush // push Rs1
	OpPop  // Rd <- pop
	OpFPush
	OpFPop

	// System call. Imm selects the Sys* number; arguments in R1..R6 and
	// F1..F4, results in R0 / F0.
	OpSyscall

	opMax // sentinel; keep last
)

// NumOps is the number of valid opcodes plus one (sentinel); opcode values in
// [1, NumOps) are valid.
const NumOps = int(opMax)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpNop:     "nop",
	OpHlt:     "hlt",
	OpMovI:    "movi",
	OpMov:     "mov",
	OpAdd:     "add",
	OpSub:     "sub",
	OpMul:     "mul",
	OpDiv:     "div",
	OpMod:     "mod",
	OpAddI:    "addi",
	OpMulI:    "muli",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpShl:     "shl",
	OpShr:     "shr",
	OpNot:     "not",
	OpFMovI:   "fmovi",
	OpFMov:    "fmov",
	OpFAdd:    "fadd",
	OpFSub:    "fsub",
	OpFMul:    "fmul",
	OpFDiv:    "fdiv",
	OpFNeg:    "fneg",
	OpCvtIF:   "cvtif",
	OpCvtFI:   "cvtfi",
	OpLd:      "ld",
	OpSt:      "st",
	OpLdB:     "ldb",
	OpStB:     "stb",
	OpFLd:     "fld",
	OpFSt:     "fst",
	OpCmp:     "cmp",
	OpCmpI:    "cmpi",
	OpFCmp:    "fcmp",
	OpJmp:     "jmp",
	OpJe:      "je",
	OpJne:     "jne",
	OpJl:      "jl",
	OpJle:     "jle",
	OpJg:      "jg",
	OpJge:     "jge",
	OpCall:    "call",
	OpRet:     "ret",
	OpPush:    "push",
	OpPop:     "pop",
	OpFPush:   "fpush",
	OpFPop:    "fpop",
	OpSyscall: "syscall",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a decodable opcode.
func (o Op) Valid() bool {
	return o > OpInvalid && o < opMax
}

// OpByName resolves a mnemonic to its opcode. It returns OpInvalid when the
// name is unknown.
func OpByName(name string) Op {
	for op, n := range opNames {
		if n == name && Op(op) != OpInvalid {
			return Op(op)
		}
	}
	return OpInvalid
}

// IsFloat reports whether the opcode operates on the floating-point register
// file for its primary operands.
func (o Op) IsFloat() bool {
	switch o {
	case OpFMovI, OpFMov, OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg, OpFLd, OpFSt,
		OpFCmp, OpFPush, OpFPop, OpCvtIF:
		return true
	}
	return false
}

// IsBranch reports whether the opcode may transfer control.
func (o Op) IsBranch() bool {
	switch o {
	case OpJmp, OpJe, OpJne, OpJl, OpJle, OpJg, OpJge, OpCall, OpRet, OpHlt:
		return true
	}
	return false
}

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool {
	switch o {
	case OpJe, OpJne, OpJl, OpJle, OpJg, OpJge:
		return true
	}
	return false
}

// IsMemAccess reports whether the opcode reads or writes guest memory through
// an effective address (loads and stores; stack ops are excluded).
func (o Op) IsMemAccess() bool {
	switch o {
	case OpLd, OpSt, OpLdB, OpStB, OpFLd, OpFSt:
		return true
	}
	return false
}

// Instr is one decoded guest instruction. All instructions occupy
// InstrSize bytes in the code segment.
type Instr struct {
	Op  Op
	Rd  Reg   // destination register (or first source for st/cmp/push)
	Rs1 Reg   // first source register / base register
	Rs2 Reg   // second source register / store value
	Imm int64 // immediate, displacement, or absolute branch target
}

// InstrSize is the encoded size of every instruction in bytes.
const InstrSize = 16

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	r := func(x Reg) string {
		if i.Op.IsFloat() {
			return fmt.Sprintf("f%d", x)
		}
		return fmt.Sprintf("r%d", x)
	}
	switch i.Op {
	case OpNop, OpHlt, OpRet:
		return i.Op.String()
	case OpMovI:
		return fmt.Sprintf("movi r%d, %d", i.Rd, i.Imm)
	case OpFMovI:
		return fmt.Sprintf("fmovi f%d, %#x", i.Rd, uint64(i.Imm))
	case OpMov, OpFMov, OpNot, OpFNeg:
		return fmt.Sprintf("%s %s, %s", i.Op, r(i.Rd), r(i.Rs1))
	case OpCvtIF:
		return fmt.Sprintf("cvtif f%d, r%d", i.Rd, i.Rs1)
	case OpCvtFI:
		return fmt.Sprintf("cvtfi r%d, f%d", i.Rd, i.Rs1)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		return fmt.Sprintf("%s f%d, f%d, f%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	case OpAddI, OpMulI:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpLd, OpLdB:
		return fmt.Sprintf("%s r%d, [r%d%+d]", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpFLd:
		return fmt.Sprintf("fld f%d, [r%d%+d]", i.Rd, i.Rs1, i.Imm)
	case OpSt, OpStB:
		return fmt.Sprintf("%s [r%d%+d], r%d", i.Op, i.Rs1, i.Imm, i.Rs2)
	case OpFSt:
		return fmt.Sprintf("fst [r%d%+d], f%d", i.Rs1, i.Imm, i.Rs2)
	case OpCmp:
		return fmt.Sprintf("cmp r%d, r%d", i.Rs1, i.Rs2)
	case OpCmpI:
		return fmt.Sprintf("cmpi r%d, %d", i.Rs1, i.Imm)
	case OpFCmp:
		return fmt.Sprintf("fcmp f%d, f%d", i.Rs1, i.Rs2)
	case OpJmp, OpJe, OpJne, OpJl, OpJle, OpJg, OpJge, OpCall:
		return fmt.Sprintf("%s %#x", i.Op, uint64(i.Imm))
	case OpPush:
		return fmt.Sprintf("push r%d", i.Rs1)
	case OpPop:
		return fmt.Sprintf("pop r%d", i.Rd)
	case OpFPush:
		return fmt.Sprintf("fpush f%d", i.Rs1)
	case OpFPop:
		return fmt.Sprintf("fpop f%d", i.Rd)
	case OpSyscall:
		return fmt.Sprintf("syscall %d", i.Imm)
	default:
		return fmt.Sprintf("%s rd=%d rs1=%d rs2=%d imm=%d", i.Op, i.Rd, i.Rs1, i.Rs2, i.Imm)
	}
}
