package vm

import (
	"strings"
	"testing"

	"chaser/internal/asm"
	"chaser/internal/isa"
	"chaser/internal/tcg"
)

func run(t *testing.T, src string) (*Machine, Termination) {
	t.Helper()
	return runCfg(t, src, Config{})
}

func runCfg(t *testing.T, src string, cfg Config) (*Machine, Termination) {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(p, cfg)
	term := m.Run()
	return m, term
}

func TestRunArithmetic(t *testing.T) {
	m, term := run(t, `
main:
    movi r1, 6
    movi r2, 7
    mul r3, r1, r2
    mov r0, r3
    hlt
`)
	if !term.OK() && term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if got := m.GPR(isa.R3); got != 42 {
		t.Errorf("r3 = %d, want 42", got)
	}
	if term.Code != 42 {
		t.Errorf("exit code = %d, want 42 (hlt reports r0)", term.Code)
	}
}

func TestRunLoop(t *testing.T) {
	// Sum 1..10 = 55.
	m, term := run(t, `
main:
    movi r1, 0      ; sum
    movi r2, 10     ; i
loop:
    add r1, r1, r2
    addi r2, r2, -1
    cmpi r2, 0
    jg loop
    syscall exit
`)
	if term.Reason != ReasonExited || term.Code != 55 {
		t.Fatalf("term = %v", term)
	}
	if got := m.GPR(isa.R1); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	if c := m.Counters(); c.Instructions == 0 || c.PerOp[isa.OpAdd] != 10 {
		t.Errorf("counters = instrs %d, adds %d", c.Instructions, c.PerOp[isa.OpAdd])
	}
}

func TestRunCallRet(t *testing.T) {
	m, term := run(t, `
.entry main
double:
    add r0, r1, r1
    ret
main:
    movi r1, 21
    call double
    hlt
`)
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if got := m.GPR(isa.R0); got != 42 {
		t.Errorf("r0 = %d, want 42", got)
	}
}

func TestRunPushPop(t *testing.T) {
	m, term := run(t, `
main:
    movi r1, 11
    movi r2, 22
    push r1
    push r2
    pop r3
    pop r4
    hlt
`)
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if m.GPR(isa.R3) != 22 || m.GPR(isa.R4) != 11 {
		t.Errorf("r3=%d r4=%d", m.GPR(isa.R3), m.GPR(isa.R4))
	}
}

func TestRunFloat(t *testing.T) {
	m, term := run(t, `
main:
    fmovi f1, 1.5
    fmovi f2, 2.25
    fadd f3, f1, f2
    fmul f4, f3, f3
    fneg f5, f4
    movi r1, 10
    cvtif f6, r1
    cvtfi r2, f2
    hlt
`)
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if got := m.FPR(isa.F3); got != 3.75 {
		t.Errorf("f3 = %v", got)
	}
	if got := m.FPR(isa.F4); got != 14.0625 {
		t.Errorf("f4 = %v", got)
	}
	if got := m.FPR(isa.F5); got != -14.0625 {
		t.Errorf("f5 = %v", got)
	}
	if got := m.FPR(isa.F6); got != 10 {
		t.Errorf("f6 = %v", got)
	}
	if got := m.GPR(isa.R2); got != 2 {
		t.Errorf("r2 = %v", got)
	}
}

func TestRunDataSegment(t *testing.T) {
	m, term := run(t, `
.data
vec: .quad 100, 200, 300
.text
main:
    movi r1, vec
    ld r2, [r1+8]
    movi r3, 999
    st [r1+16], r3
    ld r4, [r1+16]
    hlt
`)
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if m.GPR(isa.R2) != 200 || m.GPR(isa.R4) != 999 {
		t.Errorf("r2=%d r4=%d", m.GPR(isa.R2), m.GPR(isa.R4))
	}
}

func TestRunConditionals(t *testing.T) {
	tests := []struct {
		cond string
		a, b int64
		take bool
	}{
		{"je", 5, 5, true}, {"je", 5, 6, false},
		{"jne", 5, 6, true}, {"jne", 5, 5, false},
		{"jl", 4, 5, true}, {"jl", 5, 5, false},
		{"jle", 5, 5, true}, {"jle", 6, 5, false},
		{"jg", 6, 5, true}, {"jg", 5, 5, false},
		{"jge", 5, 5, true}, {"jge", 4, 5, false},
		{"jl", -3, 2, true}, {"jg", -3, 2, false},
	}
	for _, tt := range tests {
		src := `
main:
    movi r1, ` + itoa(tt.a) + `
    movi r2, ` + itoa(tt.b) + `
    cmp r1, r2
    ` + tt.cond + ` taken
    movi r0, 0
    hlt
taken:
    movi r0, 1
    hlt
`
		m, term := run(t, src)
		if term.Reason != ReasonExited {
			t.Fatalf("%s(%d,%d): %v", tt.cond, tt.a, tt.b, term)
		}
		want := uint64(0)
		if tt.take {
			want = 1
		}
		if got := m.GPR(isa.R0); got != want {
			t.Errorf("%s(%d,%d) = %d, want %d", tt.cond, tt.a, tt.b, got, want)
		}
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

func TestSIGFPE(t *testing.T) {
	_, term := run(t, `
main:
    movi r1, 10
    movi r2, 0
    div r3, r1, r2
    hlt
`)
	if term.Reason != ReasonSignal || term.Signal != SIGFPE {
		t.Fatalf("term = %v, want SIGFPE", term)
	}
	_, term = run(t, `
main:
    movi r1, 10
    movi r2, 0
    mod r3, r1, r2
    hlt
`)
	if term.Signal != SIGFPE {
		t.Fatalf("mod term = %v, want SIGFPE", term)
	}
}

func TestSIGSEGVOnWildAccess(t *testing.T) {
	_, term := run(t, `
main:
    movi r1, 0x50000
    ld r2, [r1]
    hlt
`)
	if term.Reason != ReasonSignal || term.Signal != SIGSEGV {
		t.Fatalf("term = %v, want SIGSEGV", term)
	}
	if term.PC != isa.CodeBase+isa.InstrSize {
		t.Errorf("fault pc = %#x", term.PC)
	}
}

func TestSIGSEGVOnWildJump(t *testing.T) {
	// Return to a corrupted address: push garbage, ret.
	_, term := run(t, `
main:
    movi r1, 0x123450
    push r1
    ret
`)
	if term.Reason != ReasonSignal || term.Signal != SIGSEGV {
		t.Fatalf("term = %v, want SIGSEGV", term)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	_, term := runCfg(t, `
main:
    jmp main
`, Config{MaxInstructions: 1000})
	if term.Reason != ReasonBudget {
		t.Fatalf("term = %v, want budget", term)
	}
}

func TestSyscallPrintAndOutput(t *testing.T) {
	m, term := run(t, `
.data
msg: .ascii "hi\n"
.text
main:
    movi r1, 7
    syscall print_int
    fmovi f1, 2.5
    syscall print_float
    movi r1, msg
    movi r2, 3
    syscall print_str
    movi r1, 1234
    syscall out_int
    fmovi f1, 0.5
    syscall out_float
    movi r1, msg
    movi r2, 3
    syscall out_bytes
    movi r1, 0
    syscall exit
`)
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if got := m.Console(); got != "7\n2.5\nhi\n" {
		t.Errorf("console = %q", got)
	}
	out := m.Output()
	if len(out) != 8+8+3 {
		t.Fatalf("output len = %d", len(out))
	}
	if out[0] != 0xd2 || out[1] != 0x04 { // 1234 little-endian
		t.Errorf("out_int bytes = % x", out[:8])
	}
	if string(out[16:]) != "hi\n" {
		t.Errorf("out_bytes = %q", out[16:])
	}
}

func TestSyscallAlloc(t *testing.T) {
	m, term := run(t, `
main:
    movi r1, 64
    syscall alloc
    mov r5, r0
    movi r2, 77
    st [r5+8], r2
    ld r3, [r5+8]
    movi r1, 128
    syscall alloc
    mov r6, r0
    hlt
`)
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if m.GPR(isa.R5) != isa.HeapBase {
		t.Errorf("first alloc = %#x", m.GPR(isa.R5))
	}
	if m.GPR(isa.R3) != 77 {
		t.Errorf("heap store/load = %d", m.GPR(isa.R3))
	}
	if m.GPR(isa.R6) != isa.HeapBase+64 {
		t.Errorf("second alloc = %#x", m.GPR(isa.R6))
	}
}

func TestSyscallAllocCorrupted(t *testing.T) {
	_, term := run(t, `
main:
    movi r1, -5
    syscall alloc
    hlt
`)
	if term.Reason != ReasonSignal || term.Signal != SIGSEGV {
		t.Fatalf("term = %v, want SIGSEGV on negative alloc", term)
	}
}

func TestSyscallAssert(t *testing.T) {
	_, term := run(t, `
main:
    movi r1, 1
    syscall assert
    movi r1, 0
    movi r2, 33
    syscall assert
    hlt
`)
	if term.Reason != ReasonAssert || term.Code != 33 {
		t.Fatalf("term = %v, want assert(33)", term)
	}
}

func TestSyscallInvalidNumber(t *testing.T) {
	_, term := run(t, `
main:
    syscall 999
    hlt
`)
	if term.Reason != ReasonSignal || term.Signal != SIGILL {
		t.Fatalf("term = %v, want SIGILL", term)
	}
}

func TestMPIWithoutEnv(t *testing.T) {
	_, term := run(t, `
main:
    syscall mpi_rank
    hlt
`)
	if term.Reason != ReasonMPIError {
		t.Fatalf("term = %v, want mpi-error", term)
	}
}

func TestPrintStrFault(t *testing.T) {
	_, term := run(t, `
main:
    movi r1, 0x50000
    movi r2, 4
    syscall print_str
    hlt
`)
	if term.Signal != SIGSEGV {
		t.Fatalf("term = %v, want SIGSEGV", term)
	}
}

func TestAbort(t *testing.T) {
	p, err := asm.Assemble("spin", "main:\n jmp main\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{})
	m.Abort(Termination{Reason: ReasonMPIError, Msg: "peer died"})
	term := m.Run()
	if term.Reason != ReasonMPIError {
		t.Fatalf("term = %v", term)
	}
	// Double abort keeps the first.
	m.Abort(Termination{Reason: ReasonExited})
	if got := m.Aborted(); got.Reason != ReasonMPIError {
		t.Errorf("Aborted = %v", got)
	}
}

func TestHelperInstrumentation(t *testing.T) {
	// A helper acting as a fault injector: before the 2nd execution of
	// fadd, corrupt f1.
	p, err := asm.Assemble("t", `
main:
    fmovi f1, 1.0
    fmovi f2, 2.0
    fadd f3, f1, f2
    fadd f3, f3, f2
    hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{})
	execs := 0
	id := m.RegisterHelper(func(mm *Machine, op *tcg.Op) {
		execs++
		if execs == 2 {
			mm.SetFPR(isa.F3, 100)
		}
	})
	m.Trans.AddHook(func(ins isa.Instr, pc uint64) []tcg.Op {
		if ins.Op == isa.OpFAdd {
			return []tcg.Op{{Kind: tcg.KHelper, Helper: id}}
		}
		return nil
	})
	term := m.Run()
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if execs != 2 {
		t.Errorf("helper executions = %d, want 2", execs)
	}
	// Second fadd computed 100+2 instead of 3+2.
	if got := m.FPR(isa.F3); got != 102 {
		t.Errorf("f3 = %v, want 102", got)
	}
}

func TestStepAndTerminated(t *testing.T) {
	p, err := asm.Assemble("t", "main:\n movi r1, 1\n movi r2, 2\n hlt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{})
	if m.Terminated() != nil {
		t.Error("terminated before start")
	}
	if term := m.Step(); term == nil {
		// single TB contains everything through hlt
		t.Error("step did not reach hlt")
	}
	if m.Terminated() == nil {
		t.Error("Terminated nil after hlt")
	}
	if term := m.Step(); term == nil || term.Reason != ReasonExited {
		t.Errorf("step after exit = %v", term)
	}
}

func TestStepHonorsPendingAbort(t *testing.T) {
	p, err := asm.Assemble("t", "main:\n movi r1, 1\n hlt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{})
	m.Abort(Termination{Reason: ReasonMPIError, Msg: "peer rank terminated"})
	term := m.Step()
	if term == nil || term.Reason != ReasonMPIError {
		t.Fatalf("step with pending abort = %v, want MPI-error termination", term)
	}
	if m.GPR(isa.R1) != 0 {
		t.Error("aborted step still executed a block")
	}
}

func TestStepPerformsChainingBookkeeping(t *testing.T) {
	// A loop revisits the same control-flow edge; stepping through it must
	// populate and then follow chains exactly like Run.
	src := `
main:
    movi r2, 0
loop:
    addi r2, r2, 1
    cmpi r2, 5
    jl loop
    hlt
`
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{})
	for i := 0; i < 50; i++ {
		if term := m.Step(); term != nil {
			break
		}
	}
	if m.Terminated() == nil || m.Terminated().Reason != ReasonExited {
		t.Fatalf("terminated = %v", m.Terminated())
	}
	if m.Counters().ChainedTBs == 0 {
		t.Error("Step never followed a chained edge")
	}
}

func TestConsoleOverflowIsClamped(t *testing.T) {
	// Printing a lot must not grow the console without bound.
	src := `
main:
    movi r2, 100
loop:
    movi r1, 123456789
    syscall print_int
    addi r2, r2, -1
    cmpi r2, 0
    jg loop
    hlt
`
	m, term := run(t, src)
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if !strings.HasPrefix(m.Console(), "123456789\n") {
		t.Error("console missing output")
	}
}

func TestExecTrace(t *testing.T) {
	p, err := asm.Assemble("t", `
main:
    movi r1, 3
loop:
    addi r1, r1, -1
    cmpi r1, 0
    jg loop
    movi r2, 0x50000
    ld r3, [r2]
    hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{})
	if got := m.ExecTrace(); got != nil {
		t.Error("trace non-nil before enabling")
	}
	m.EnableExecTrace(4)
	term := m.Run()
	if term.Signal != SIGSEGV {
		t.Fatalf("term = %v", term)
	}
	tr := m.ExecTrace()
	if len(tr) != 4 {
		t.Fatalf("trace len = %d, want 4 (ring)", len(tr))
	}
	// Newest entry is the faulting load.
	last := tr[len(tr)-1]
	if last.Op != isa.OpLd {
		t.Errorf("last op = %v, want ld", last.Op)
	}
	// Entries are in execution order.
	for i := 1; i < len(tr); i++ {
		if tr[i].InstrNum <= tr[i-1].InstrNum {
			t.Error("trace not in execution order")
		}
	}
	out := m.FormatExecTrace()
	if !strings.Contains(out, "ld r3, [r2+0]") {
		t.Errorf("formatted trace missing disassembly:\n%s", out)
	}
}

func TestExecTraceDefaultsAndPartialFill(t *testing.T) {
	p, err := asm.Assemble("t", "main:\n movi r1, 1\n hlt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{})
	m.EnableExecTrace(0) // defaults to 64
	m.Run()
	tr := m.ExecTrace()
	if len(tr) != 2 { // movi + hlt
		t.Errorf("trace len = %d, want 2", len(tr))
	}
}

func TestBlockChaining(t *testing.T) {
	// A hot loop must run through chained edges rather than cache lookups.
	m, term := run(t, `
main:
    movi r2, 1000
loop:
    addi r2, r2, -1
    cmpi r2, 0
    jg loop
    hlt
`)
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	c := m.Counters()
	if c.ChainedTBs == 0 {
		t.Fatal("no chained blocks on a hot loop")
	}
	if c.ChainedTBs < c.TBsExecuted*9/10 {
		t.Errorf("chained %d of %d TBs; expected nearly all", c.ChainedTBs, c.TBsExecuted)
	}
	// Translation stats see only the misses.
	if s := m.Trans.Stats(); s.CacheHits > 10 {
		t.Errorf("cache hits = %d; chaining should bypass the cache", s.CacheHits)
	}
}

func TestChainingInvalidatedByFlush(t *testing.T) {
	// After a mid-run flush, chained edges to old-generation blocks must
	// not be followed; retranslation picks up newly added hooks.
	p, err := asm.Assemble("t", `
main:
    movi r2, 100
loop:
    addi r2, r2, -1
    cmpi r2, 0
    jg loop
    hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{})
	hookCalls := 0
	id := m.RegisterHelper(func(mm *Machine, op *tcg.Op) { hookCalls++ })
	flipped := false
	flipID := m.RegisterHelper(func(mm *Machine, op *tcg.Op) {
		if !flipped && mm.GPR(isa.R2) == 50 {
			flipped = true
			// Arm a new hook mid-run, exactly like Chaser does, and flush.
			mm.Trans.AddHook(func(ins isa.Instr, pc uint64) []tcg.Op {
				if ins.Op == isa.OpCmpI {
					return []tcg.Op{{Kind: tcg.KHelper, Helper: id}}
				}
				return nil
			})
			mm.Trans.Flush()
		}
	})
	m.Trans.AddHook(func(ins isa.Instr, pc uint64) []tcg.Op {
		if ins.Op == isa.OpAddI {
			return []tcg.Op{{Kind: tcg.KHelper, Helper: flipID}}
		}
		return nil
	})
	term := m.Run()
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if !flipped {
		t.Fatal("flip helper never fired")
	}
	// The newly armed hook must have run for the remaining ~50 iterations;
	// stale chains would have kept executing the old translation.
	if hookCalls < 45 {
		t.Errorf("late-armed hook ran %d times; stale chains suspected", hookCalls)
	}
}
