package vm

import "fmt"

// Signal models the guest-visible OS signals a fault can raise.
type Signal int

// Guest signals.
const (
	SigNone Signal = iota
	// SIGSEGV: access to unmapped memory or an instruction fetch fault.
	SIGSEGV
	// SIGFPE: integer division or modulo by zero.
	SIGFPE
	// SIGILL: execution of an undecodable instruction.
	SIGILL
)

// String returns the conventional signal name.
func (s Signal) String() string {
	switch s {
	case SigNone:
		return "none"
	case SIGSEGV:
		return "SIGSEGV"
	case SIGFPE:
		return "SIGFPE"
	case SIGILL:
		return "SIGILL"
	}
	return fmt.Sprintf("signal(%d)", int(s))
}

// Reason classifies how a guest process ended.
type Reason int

// Termination reasons.
const (
	// ReasonExited: the process called exit or ran to hlt.
	ReasonExited Reason = iota + 1
	// ReasonSignal: the process was killed by an OS exception.
	ReasonSignal
	// ReasonAssert: a program-level assertion (e.g. CLAMR's mass
	// conservation checker) failed.
	ReasonAssert
	// ReasonMPIError: the MPI runtime detected an error (invalid argument,
	// peer failure, truncation).
	ReasonMPIError
	// ReasonBudget: the instruction budget was exhausted (a hung process
	// killed by the supervisor).
	ReasonBudget
	// ReasonTimeout: the wall-clock watchdog expired. Distinct from
	// ReasonBudget: a budget kill means the guest retired too many
	// instructions (a spinning hang), while a timeout means the run burned
	// too much real time (a stalled hang — blocked I/O, a descheduled
	// world, or a simulator stall the step counter can never observe).
	ReasonTimeout
	// ReasonPaused: the machine was suspended at a resumable point for a
	// snapshot (fork-point run multiplexing). Not a guest outcome: a paused
	// world is captured and discarded, never classified.
	ReasonPaused
)

// String returns the reason name.
func (r Reason) String() string {
	switch r {
	case ReasonExited:
		return "exited"
	case ReasonSignal:
		return "signal"
	case ReasonAssert:
		return "assert-failed"
	case ReasonMPIError:
		return "mpi-error"
	case ReasonBudget:
		return "budget-exhausted"
	case ReasonTimeout:
		return "timeout"
	case ReasonPaused:
		return "paused"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// Termination is the final status of a guest process.
type Termination struct {
	Reason Reason
	Signal Signal // set when Reason == ReasonSignal
	Code   int64  // exit code or assertion code
	PC     uint64 // guest pc at termination
	Msg    string // human-readable detail
}

// OK reports a clean exit with code zero.
func (t Termination) OK() bool {
	return t.Reason == ReasonExited && t.Code == 0
}

// Abnormal reports any outcome other than a clean or non-zero exit, i.e.
// the process was "terminated" in the paper's classification sense.
func (t Termination) Abnormal() bool {
	return t.Reason != ReasonExited
}

// String renders the termination status.
func (t Termination) String() string {
	switch t.Reason {
	case ReasonExited:
		return fmt.Sprintf("exited(%d)", t.Code)
	case ReasonSignal:
		return fmt.Sprintf("killed(%s) at %#x: %s", t.Signal, t.PC, t.Msg)
	case ReasonAssert:
		return fmt.Sprintf("assert-failed(code=%d) at %#x", t.Code, t.PC)
	case ReasonMPIError:
		return fmt.Sprintf("mpi-error at %#x: %s", t.PC, t.Msg)
	case ReasonBudget:
		return fmt.Sprintf("budget-exhausted at %#x", t.PC)
	case ReasonTimeout:
		return fmt.Sprintf("wall-clock timeout at %#x: %s", t.PC, t.Msg)
	case ReasonPaused:
		return fmt.Sprintf("paused at %#x", t.PC)
	}
	return fmt.Sprintf("termination(%d)", int(t.Reason))
}
