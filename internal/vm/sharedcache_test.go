package vm

import (
	"sync"
	"testing"

	"chaser/internal/asm"
	"chaser/internal/isa"
	"chaser/internal/tcg"
)

// sharedCacheSrc loops over a targeted fadd so the armed machine's injector
// fires many times and every machine exercises block chaining.
const sharedCacheSrc = `
main:
    movi r1, 0
    movi r2, 0
    fmovi f1, 1.5
    fmovi f2, 2.25
loop:
    addi r1, r1, 3
    fadd f3, f1, f2
    addi r2, r2, 1
    cmpi r2, 200
    jl loop
    hlt
`

// TestSharedBaseCacheConcurrentMachines is the tentpole's vm-level race
// proof: many machines run concurrently off one base cache while some of
// them arm instrumentation hooks and flush their overlays mid-fleet. Peers'
// translations, chains and results must be unaffected, and the armed
// machines must still see every targeted execution. Run with -race.
func TestSharedBaseCacheConcurrentMachines(t *testing.T) {
	p, err := asm.Assemble("shared", sharedCacheSrc)
	if err != nil {
		t.Fatal(err)
	}
	base := tcg.NewBaseCache(p)

	const machines = 12
	type result struct {
		term    Termination
		r1      uint64
		fired   uint64
		chained uint64
		stats   tcg.Stats
		armed   bool
	}
	results := make([]result, machines)
	var wg sync.WaitGroup
	for i := 0; i < machines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := New(p, Config{BaseCache: base})
			armed := i%3 == 0 // every third machine injects
			var fired uint64
			if armed {
				id := m.RegisterHelper(func(mm *Machine, op *tcg.Op) { fired++ })
				m.Trans.AddHook(func(ins isa.Instr, pc uint64) []tcg.Op {
					if ins.Op != isa.OpFAdd {
						return nil
					}
					return []tcg.Op{{Kind: tcg.KHelper, Helper: id}}
				})
				m.Trans.Flush()
			}
			term := m.Run()
			results[i] = result{
				term:    term,
				r1:      m.GPR(isa.R1),
				fired:   fired,
				chained: m.Counters().ChainedTBs,
				stats:   m.Trans.Stats(),
				armed:   armed,
			}
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.term.Reason != ReasonExited {
			t.Fatalf("machine %d: %v", i, r.term)
		}
		if r.r1 != 600 {
			t.Errorf("machine %d: r1 = %d, want 600", i, r.r1)
		}
		if r.chained == 0 {
			t.Errorf("machine %d: no chained blocks", i)
		}
		if r.armed {
			if r.fired != 200 {
				t.Errorf("machine %d: helper fired %d times, want 200", i, r.fired)
			}
			if r.stats.InstrumentedBlocks == 0 {
				t.Errorf("machine %d: armed but no instrumented blocks", i)
			}
		} else {
			if r.fired != 0 || r.stats.InstrumentedBlocks != 0 {
				t.Errorf("machine %d: clean peer saw instrumentation: fired=%d stats=%+v", i, r.fired, r.stats)
			}
		}
	}

	// Across the fleet the program is translated approximately once: clean
	// peers beyond the first should add zero translations, armed machines
	// only their targeted block. Allow for benign races on first-translation.
	var total uint64
	for _, r := range results {
		total += r.stats.Translations
	}
	if bs := base.Stats(); bs.Blocks == 0 || bs.Hits == 0 {
		t.Errorf("base stats = %+v, want warm shared cache", bs)
	}
	perMachine := uint64(base.Len()) // one full private translation's worth
	if total >= machines*perMachine {
		t.Errorf("total translations = %d across %d machines (private behaviour would be >= %d); sharing broken",
			total, machines, machines*perMachine)
	}
}
