package vm

import (
	"fmt"
	"strings"

	"chaser/internal/isa"
)

// TracedInstr is one entry of the execution-trace ring buffer.
type TracedInstr struct {
	PC       uint64
	Op       isa.Op
	InstrNum uint64
}

// execRing holds the last N retired guest instructions for post-mortem
// analysis of crashed runs. It is nil unless enabled.
type execRing struct {
	buf  []TracedInstr
	next int
	full bool
}

// EnableExecTrace starts recording the last n retired instructions; it is
// the post-analysis aid for crashed injection runs ("what was the guest
// doing when it died"). Costs one ring write per instruction.
func (m *Machine) EnableExecTrace(n int) {
	if n <= 0 {
		n = 64
	}
	m.execTrace = &execRing{buf: make([]TracedInstr, n)}
}

// ExecTrace returns the recorded tail of the instruction stream in
// execution order (oldest first). Empty unless EnableExecTrace was called.
func (m *Machine) ExecTrace() []TracedInstr {
	r := m.execTrace
	if r == nil {
		return nil
	}
	var out []TracedInstr
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// FormatExecTrace renders the trace tail with disassembly, newest last.
func (m *Machine) FormatExecTrace() string {
	entries := m.ExecTrace()
	if len(entries) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, e := range entries {
		dis := e.Op.String()
		if ins, ok := m.Prog.InstrAt(e.PC); ok {
			dis = ins.String()
		}
		fmt.Fprintf(&sb, "  #%-10d %#08x: %s\n", e.InstrNum, e.PC, dis)
	}
	return sb.String()
}

func (r *execRing) record(pc uint64, op isa.Op, num uint64) {
	r.buf[r.next] = TracedInstr{PC: pc, Op: op, InstrNum: num}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}
