package vm

import "chaser/internal/isa"

// opMetricNames precomputes the per-opcode counter names so the end-of-run
// flush never builds strings (flushObs runs inside the whole-run allocation
// budget guarded by TestObsDisabledNoAlloc).
var opMetricNames = func() [isa.NumOps]string {
	var names [isa.NumOps]string
	for op := 1; op < isa.NumOps; op++ {
		names[op] = "vm_op_" + isa.Op(op).String() + "_executions_total"
	}
	return names
}()

// flushObs publishes the machine's end-of-run execution statistics into the
// attached registry. The interpreter hot loop already maintains Counters, so
// telemetry costs one registry flush per run instead of one atomic op per
// instruction. Counters accumulate across machines: campaign workers share
// one registry, so values are added, never set.
func (m *Machine) flushObs() {
	if m.term != nil {
		m.events.Emit("rank_term", -1, m.Rank,
			uint64(m.term.Reason), m.counters.Instructions, m.term.Reason.String())
	}
	reg := m.obsReg
	if reg == nil || m.obsFlushed {
		return
	}
	m.obsFlushed = true

	m.flushPerOp()
	c := m.counters
	reg.Counter("vm_instructions_total").Add(c.Instructions)
	reg.Counter("vm_tb_executed_total").Add(c.TBsExecuted)
	reg.Counter("vm_tb_chained_total").Add(c.ChainedTBs)
	reg.Counter("vm_fastpath_tbs_total").Add(c.FastPathTBs)
	reg.Counter("vm_syscalls_total").Add(c.Syscalls)
	reg.Counter("vm_cow_page_copies_total").Add(m.Mem.CowCopies())
	reg.Counter("vm_tainted_mem_reads_total").Add(c.TaintedMemReads)
	reg.Counter("vm_tainted_mem_writes_total").Add(c.TaintedMemWrites)
	if m.term != nil && m.term.Reason == ReasonSignal {
		reg.Counter("vm_signals_total").Inc()
	}
	// The per-opcode execution histogram (tcg.TB.OpCounts folded into
	// Counters.PerOp). The registry has no label dimension, so each opcode
	// gets its own counter; mnemonics are lowercase alphanumerics, so the
	// names are valid in both exposition formats.
	for op := 1; op < isa.NumOps; op++ {
		if n := c.PerOp[op]; n > 0 {
			reg.Counter(opMetricNames[op]).Add(n)
		}
	}

	ts := m.Trans.Stats()
	reg.Counter("tcg_translations_total").Add(ts.Translations)
	reg.Counter("tcg_cache_hits_total").Add(ts.CacheHits)
	reg.Counter("tcg_cache_misses_total").Add(ts.CacheMisses)
	reg.Counter("tcg_base_hits_total").Add(ts.BaseHits)
	reg.Counter("tcg_base_misses_total").Add(ts.BaseMisses)
	reg.Counter("tcg_instrumented_blocks_total").Add(ts.InstrumentedBlocks)
	reg.Counter("tcg_flushes_total").Add(ts.Flushes)
	reg.Counter("tcg_helper_ops_total").Add(ts.HelperOps)
	reg.Counter("tcg_opt_rewrites_total").Add(ts.OptRewrites)
	reg.Counter("tcg_fused_ops_total").Add(ts.FusedOps)
	reg.Counter("tcg_ops_emitted_total").Add(ts.OpsEmitted)
	reg.Gauge("tcg_overlay_blocks_high_water").SetMax(float64(ts.OverlayBlocks))

	reg.Gauge("taint_tainted_bytes_high_water").SetMax(float64(m.Shadow.HighWater()))
}
