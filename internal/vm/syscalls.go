package vm

import (
	"errors"
	"fmt"
	"strconv"

	"chaser/internal/isa"
)

// Limits protecting the host from fault-corrupted guest arguments.
const (
	maxConsoleBytes = 1 << 20
	maxOutputBytes  = 1 << 24
	maxPrintLen     = 1 << 16
	heapLimit       = uint64(256 << 20)
)

// doSyscall dispatches one guest system call. The continuation pc has
// already been set by the engine; syscalls that terminate the process set
// m.term instead.
func (m *Machine) doSyscall(sys isa.Sys, eip uint64) {
	m.counters.Syscalls++
	if m.Hooks.PreSyscall != nil {
		m.Hooks.PreSyscall(m, sys)
		if m.term != nil {
			return
		}
	}
	m.dispatchSyscall(sys, eip)
	if m.term == nil && m.Hooks.PostSyscall != nil {
		m.Hooks.PostSyscall(m, sys)
	}
}

func (m *Machine) dispatchSyscall(sys isa.Sys, eip uint64) {
	switch sys {
	case isa.SysExit:
		m.term = &Termination{Reason: ReasonExited, Code: int64(m.GPR(isa.R1)), PC: eip}

	case isa.SysPrintInt:
		m.appendConsole(strconv.FormatInt(int64(m.GPR(isa.R1)), 10) + "\n")
	case isa.SysPrintFloat:
		m.appendConsole(strconv.FormatFloat(m.FPR(isa.F1), 'g', -1, 64) + "\n")
	case isa.SysPrintStr:
		addr, n := m.GPR(isa.R1), m.GPR(isa.R2)
		if n > maxPrintLen {
			m.killAt(eip, SIGSEGV, fmt.Sprintf("print_str length %d too large", n))
			return
		}
		data, err := m.Mem.ReadBytes(addr, n)
		if err != nil {
			m.killAt(eip, SIGSEGV, err.Error())
			return
		}
		m.appendConsole(string(data))

	case isa.SysOutInt:
		var buf [8]byte
		v := m.GPR(isa.R1)
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		m.appendOutput(buf[:])
	case isa.SysOutFloat:
		var buf [8]byte
		v := m.regs[fprBitsIndex]
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		m.appendOutput(buf[:])
	case isa.SysOutBytes:
		addr, n := m.GPR(isa.R1), m.GPR(isa.R2)
		if n > maxOutputBytes {
			m.killAt(eip, SIGSEGV, fmt.Sprintf("out_bytes length %d too large", n))
			return
		}
		data, err := m.Mem.ReadBytes(addr, n)
		if err != nil {
			m.killAt(eip, SIGSEGV, err.Error())
			return
		}
		m.appendOutput(data)

	case isa.SysAlloc:
		size := int64(m.GPR(isa.R1))
		if size < 0 || uint64(size) > heapLimit || m.heapBrk+uint64(size) > isa.HeapBase+heapLimit {
			// A fault-corrupted allocation size: the guest allocator
			// fails hard, like a real OOM kill.
			m.killAt(eip, SIGSEGV, fmt.Sprintf("alloc of %d bytes failed", size))
			return
		}
		base := m.heapBrk
		// Round the next break to 8 bytes to keep allocations aligned.
		m.heapBrk += (uint64(size) + 7) &^ 7
		m.Mem.Map("heap", base, m.heapBrk-base+PageSize)
		m.SetGPR(isa.R0, base)

	case isa.SysAssert:
		if m.GPR(isa.R1) == 0 {
			m.term = &Termination{Reason: ReasonAssert, Code: int64(m.GPR(isa.R2)), PC: eip}
		}

	case isa.SysMPIRank, isa.SysMPISize, isa.SysMPISend, isa.SysMPIRecv,
		isa.SysMPIBarrier, isa.SysMPIBcast, isa.SysMPIReduce, isa.SysMPIAllreduce:
		if m.mpi == nil {
			m.term = &Termination{
				Reason: ReasonMPIError, PC: eip,
				Msg: fmt.Sprintf("%s called without an MPI environment", sys),
			}
			return
		}
		if err := m.mpi.Call(m, sys); err != nil {
			var ab *AbortedError
			if errors.As(err, &ab) {
				t := ab.Term
				if t.PC == 0 {
					t.PC = eip
				}
				if t.Reason == ReasonPaused {
					// A pause interrupted a blocked MPI wait. The rewind
					// point is the syscall instruction itself: the forked
					// continuation re-issues the wait against snapshotted
					// queues. Snapshot compensates the already-counted
					// retirement (see Machine.Snapshot).
					t.PC = eip
					m.pausedIn = sys
				}
				m.term = &t
				return
			}
			var mpiErr *MPIRuntimeError
			if errors.As(err, &mpiErr) {
				m.term = &Termination{Reason: ReasonMPIError, PC: eip, Msg: err.Error()}
				return
			}
			var seg *SegFaultError
			if errors.As(err, &seg) {
				// The runtime touched a fault-corrupted user buffer.
				m.killAt(eip, SIGSEGV, err.Error())
				return
			}
			m.term = &Termination{Reason: ReasonMPIError, PC: eip, Msg: err.Error()}
		}

	default:
		// An invalid syscall number (possibly fault-corrupted code) is an
		// illegal instruction.
		m.killAt(eip, SIGILL, fmt.Sprintf("invalid syscall %d", int64(sys)))
	}
}

// fprBitsIndex is the micro-register index of F1, used by SysOutFloat to
// emit raw IEEE-754 bits without converting through float64.
const fprBitsIndex = 16 + 1

func (m *Machine) killAt(eip uint64, sig Signal, msg string) {
	m.term = &Termination{Reason: ReasonSignal, Signal: sig, PC: eip, Msg: msg}
}

func (m *Machine) appendConsole(s string) {
	if len(m.console)+len(s) <= maxConsoleBytes {
		m.console = append(m.console, s...)
	}
}

func (m *Machine) appendOutput(b []byte) {
	if len(m.output)+len(b) <= maxOutputBytes {
		m.output = append(m.output, b...)
	}
}
