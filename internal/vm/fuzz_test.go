package vm

import (
	"testing"

	"chaser/internal/isa"
)

// FuzzExecute feeds arbitrary bytes to the decoder and, when they form a
// decodable program, executes it under a small instruction budget. The
// engine must never panic and must always produce a Termination — faults
// become guest signals, never host crashes. This is exactly the property a
// fault injector depends on: arbitrary corrupted code must stay contained.
func FuzzExecute(f *testing.F) {
	mk := func(code ...isa.Instr) []byte { return isa.EncodeProgram(code) }
	f.Add(mk(isa.Instr{Op: isa.OpHlt}))
	f.Add(mk(
		isa.Instr{Op: isa.OpMovI, Rd: isa.R1, Imm: 64},
		isa.Instr{Op: isa.OpSyscall, Imm: int64(isa.SysAlloc)},
		isa.Instr{Op: isa.OpSt, Rs1: isa.R0, Rs2: isa.R1},
		isa.Instr{Op: isa.OpHlt},
	))
	f.Add(mk(
		isa.Instr{Op: isa.OpCall, Imm: int64(isa.CodeBase + isa.InstrSize)},
		isa.Instr{Op: isa.OpRet},
	))
	f.Add(mk(
		isa.Instr{Op: isa.OpMovI, Rd: isa.R2, Imm: 0},
		isa.Instr{Op: isa.OpDiv, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
	))
	f.Add(mk(isa.Instr{Op: isa.OpJmp, Imm: int64(isa.CodeBase)}))

	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 64*isa.InstrSize {
			return
		}
		raw = raw[:len(raw)/isa.InstrSize*isa.InstrSize]
		code, err := isa.DecodeProgram(raw)
		if err != nil || len(code) == 0 {
			return
		}
		prog := &isa.Program{Name: "fuzz", Entry: isa.CodeBase, Code: code}
		// Deliberately skip Validate: corrupted programs with wild branch
		// targets must still be contained at run time.
		m := New(prog, Config{MaxInstructions: 10_000})
		m.TaintEnabled = true
		term := m.Run()
		if term.Reason == 0 {
			t.Fatal("no termination reason")
		}
	})
}
