package vm

import (
	"fmt"
	"sync"
	"testing"
)

// TestMemoryCOWIsolation: after a snapshot, the original and any number of
// forks privatize pages on first write and never observe each other's stores.
func TestMemoryCOWIsolation(t *testing.T) {
	m := NewMemory()
	m.Map("r", 0, 4*PageSize)
	for i := uint64(0); i < 4; i++ {
		if err := m.Write64(i*PageSize, 100+i); err != nil {
			t.Fatal(err)
		}
	}
	img := m.Snapshot()

	a := NewMemoryFromImage(img)
	b := NewMemoryFromImage(img)
	if err := a.Write64(0, 1111); err != nil {
		t.Fatal(err)
	}
	if err := b.Write64(0, 2222); err != nil {
		t.Fatal(err)
	}
	if err := m.Write64(0, 3333); err != nil { // the original COWs too
		t.Fatal(err)
	}
	for i, mm := range []*Memory{a, b, m} {
		want := []uint64{1111, 2222, 3333}[i]
		if v, _ := mm.Read64(0); v != want {
			t.Errorf("memory %d: page 0 = %d, want %d", i, v, want)
		}
		// Untouched pages still read the snapshot values.
		for p := uint64(1); p < 4; p++ {
			if v, _ := mm.Read64(p * PageSize); v != 100+p {
				t.Errorf("memory %d: page %d = %d, want %d", i, p, v, 100+p)
			}
		}
		if got := mm.CowCopies(); got != 1 {
			t.Errorf("memory %d: CowCopies = %d, want 1", i, got)
		}
	}
}

// TestMemoryTranslateStableAcrossFork: physical addresses assigned before a
// snapshot survive the snapshot, the fork, and the fork's COW copies — the
// invariant that keeps forked propagation-log records bitwise identical to a
// from-scratch run's.
func TestMemoryTranslateStableAcrossFork(t *testing.T) {
	m := NewMemory()
	m.Map("r", 0x1000, 3*PageSize)
	addrs := []uint64{0x1008, 0x1000 + PageSize, 0x1010 + 2*PageSize}
	before := make([]uint64, len(addrs))
	for i, a := range addrs {
		if err := m.Write8(a, byte(i)); err != nil {
			t.Fatal(err)
		}
		pa, err := m.Translate(a)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = pa
	}
	img := m.Snapshot()
	f := NewMemoryFromImage(img)
	for i, a := range addrs {
		if pa, _ := f.Translate(a); pa != before[i] {
			t.Errorf("fork pre-write: Translate(%#x) = %#x, want %#x", a, pa, before[i])
		}
		if err := f.Write8(a, 0xff); err != nil { // privatize
			t.Fatal(err)
		}
		if pa, _ := f.Translate(a); pa != before[i] {
			t.Errorf("fork post-COW: Translate(%#x) = %#x, want %#x", a, pa, before[i])
		}
		if pa, _ := m.Translate(a); pa != before[i] {
			t.Errorf("original: Translate(%#x) = %#x, want %#x", a, pa, before[i])
		}
	}
	// A page first touched after the fork continues the image's frame
	// numbering, as a from-scratch run reaching it would.
	fresh := uint64(0x1000 + 2*PageSize)
	pa1, err := f.Translate(fresh + 4)
	if err != nil {
		t.Fatal(err)
	}
	f2 := NewMemoryFromImage(img)
	pa2, err := f2.Translate(fresh + 4)
	if err != nil {
		t.Fatal(err)
	}
	if pa1 != pa2 {
		t.Errorf("fresh page frames diverge across forks: %#x vs %#x", pa1, pa2)
	}
}

// TestMemoryTLBAfterCOW: a read of a sealed page must not install a TLB entry
// (cached pages are written through directly), and after the COW copy the
// refreshed entry must serve the private page.
func TestMemoryTLBAfterCOW(t *testing.T) {
	m := NewMemory()
	m.Map("r", 0, PageSize)
	if err := m.Write64(0, 7); err != nil {
		t.Fatal(err)
	}
	img := m.Snapshot()
	f := NewMemoryFromImage(img)

	// Read first: shares the sealed page. If this cached the page, the
	// following write would scribble on the snapshot.
	if v, _ := f.Read64(0); v != 7 {
		t.Fatalf("fork read = %d, want 7", v)
	}
	if err := f.Write64(0, 8); err != nil {
		t.Fatal(err)
	}
	if f.CowCopies() != 1 {
		t.Errorf("CowCopies = %d, want 1 (read must not have privatized)", f.CowCopies())
	}
	// TLB now holds the private copy; hits must see the new value while the
	// snapshot (via a second fork) still sees the old one.
	if v, _ := f.Read64(0); v != 8 {
		t.Errorf("post-COW read = %d, want 8", v)
	}
	if v, _ := NewMemoryFromImage(img).Read64(0); v != 7 {
		t.Errorf("snapshot corrupted: read %d, want 7", v)
	}
	// Writes after the copy reuse the private page: no further COW.
	if err := f.Write64(8, 9); err != nil {
		t.Fatal(err)
	}
	if f.CowCopies() != 1 {
		t.Errorf("CowCopies = %d after second write, want 1", f.CowCopies())
	}
}

// TestMemoryCOWStraddle: a store straddling two sealed pages privatizes both.
func TestMemoryCOWStraddle(t *testing.T) {
	m := NewMemory()
	m.Map("r", 0, 2*PageSize)
	if err := m.Write64(PageSize-4, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	img := m.Snapshot()
	f := NewMemoryFromImage(img)
	if err := f.Write64(PageSize-4, 0x8877665544332211); err != nil {
		t.Fatal(err)
	}
	if f.CowCopies() != 2 {
		t.Errorf("CowCopies = %d, want 2 (both straddled pages)", f.CowCopies())
	}
	if v, _ := f.Read64(PageSize - 4); v != 0x8877665544332211 {
		t.Errorf("fork straddle read = %#x", v)
	}
	if v, _ := NewMemoryFromImage(img).Read64(PageSize - 4); v != 0x1122334455667788 {
		t.Errorf("snapshot straddle read = %#x", v)
	}
}

// TestMemoryOverlappingRegions: overlapping maps share the underlying pages —
// an address covered by two regions resolves to one frame and one store.
func TestMemoryOverlappingRegions(t *testing.T) {
	m := NewMemory()
	m.Map("a", 0x1000, 2*PageSize)
	m.Map("b", 0x1000+PageSize, 2*PageSize) // overlaps a's second page
	over := uint64(0x1000 + PageSize + 8)
	if err := m.Write64(over, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read64(over); v != 42 {
		t.Errorf("overlap read = %d", v)
	}
	if got := m.RegionName(over); got != "a" { // first mapped region wins
		t.Errorf("RegionName = %q", got)
	}
	// The overlap survives snapshot/fork like any other page.
	f := NewMemoryFromImage(m.Snapshot())
	pa1, _ := m.Translate(over)
	pa2, _ := f.Translate(over)
	if pa1 != pa2 {
		t.Errorf("overlap frame unstable across fork: %#x vs %#x", pa1, pa2)
	}
	if err := f.Write64(over, 43); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read64(over); v != 42 {
		t.Errorf("fork write leaked into original: %d", v)
	}
}

// TestMemoryConcurrentForks hammers one snapshot from many forks at once:
// every fork reads the shared sealed pages and COWs its own copies. Run with
// -race; the sealed pages must never be written by anyone.
func TestMemoryConcurrentForks(t *testing.T) {
	m := NewMemory()
	const pages = 8
	m.Map("r", 0, pages*PageSize)
	for i := uint64(0); i < pages; i++ {
		if err := m.Write64(i*PageSize, i); err != nil {
			t.Fatal(err)
		}
	}
	img := m.Snapshot()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := NewMemoryFromImage(img)
			for round := 0; round < 50; round++ {
				for i := uint64(0); i < pages; i++ {
					v, err := f.Read64(i * PageSize)
					if err != nil {
						errs <- err
						return
					}
					if err := f.Write64(i*PageSize, v+1); err != nil {
						errs <- err
						return
					}
				}
			}
			// Each page started at i and was incremented 50 times.
			for i := uint64(0); i < pages; i++ {
				if v, _ := f.Read64(i * PageSize); v != i+50 {
					errs <- fmt.Errorf("fork %d: page %d = %d, want %d", g, i, v, i+50)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The snapshot itself is untouched.
	check := NewMemoryFromImage(img)
	for i := uint64(0); i < pages; i++ {
		if v, _ := check.Read64(i * PageSize); v != i {
			t.Errorf("snapshot page %d = %d, want %d", i, v, i)
		}
	}
}
