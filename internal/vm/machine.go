// Package vm implements the Chaser virtual machine: a guest process executing
// translated TCG micro-ops over paged memory, with optional bitwise taint
// tracking, OS-style signals, a syscall layer, and instrumentation hooks.
//
// One Machine corresponds to one guest process (one MPI rank). It plays the
// role of a QEMU vCPU plus the thin slice of guest OS that Chaser interacts
// with: process identity for VMI, signals for crash outcomes, and the MPI
// syscall boundary that Chaser hooks for cross-rank taint coordination.
package vm

import (
	"fmt"
	"math"

	"chaser/internal/isa"
	"chaser/internal/obs"
	"chaser/internal/taint"
	"chaser/internal/tcg"
)

// DefaultMaxInstructions bounds runaway guests (fault-induced infinite
// loops); the supervisor kill is reported as ReasonBudget.
const DefaultMaxInstructions = 200_000_000

// DefaultSampleInterval is how often (in retired guest instructions) the
// tainted-byte sampler fires, matching the paper's 100K-instruction sampling
// of the fault-propagation curves.
const DefaultSampleInterval = 100_000

// Helper is an instrumentation callback invoked by a KHelper micro-op. It
// runs in front of the guest instruction identified by op.GuestPC/GuestOp —
// this is the execution context of Chaser's fault_injector().
type Helper func(m *Machine, op *tcg.Op)

// MemTaintEvent describes one tainted-memory access, carrying exactly the
// fields Chaser logs: instruction pointer, virtual and physical address,
// the taint mask and the current value at that location.
type MemTaintEvent struct {
	EIP      uint64
	VAddr    uint64
	PAddr    uint64
	Value    uint64
	Mask     uint64
	Rank     int
	Size     int // access width in bytes (1 or 8)
	InstrNum uint64
	// Region names the memory region of VAddr ("heap", "stack", "data"),
	// supporting region-level propagation analysis.
	Region string
}

// Hooks collects the optional callbacks a platform (DECAF/Chaser) installs
// on a machine. Nil members are skipped.
type Hooks struct {
	// TaintedMemRead fires when a load reads tainted bytes
	// (DECAF_READ_TAINTMEM_CB).
	TaintedMemRead func(ev MemTaintEvent)
	// TaintedMemWrite fires when a store writes tainted bytes
	// (DECAF_WRITE_TAINTMEM_CB).
	TaintedMemWrite func(ev MemTaintEvent)
	// PreSyscall fires before a syscall dispatches; Chaser uses it to hook
	// MPI sends (publish taint to the hub).
	PreSyscall func(m *Machine, sys isa.Sys)
	// PostSyscall fires after a syscall completes; Chaser uses it to hook
	// MPI receives (poll taint from the hub).
	PostSyscall func(m *Machine, sys isa.Sys)
	// Sample fires every SampleInterval retired instructions while taint
	// tracking is enabled.
	Sample func(instrs uint64, taintedBytes int64)
}

// Counters aggregates execution statistics for one run.
type Counters struct {
	Instructions uint64
	// PerOp is indexed by opcode; it spans the full uint8 opcode space (only
	// the first isa.NumOps entries are ever non-zero) so the interpreter's
	// per-instruction increment compiles without a bounds check.
	PerOp            [256]uint64
	TBsExecuted      uint64
	ChainedTBs       uint64 // blocks reached through chained edges
	FastPathTBs      uint64 // blocks executed on the taint-free fast loop
	TaintedMemReads  uint64
	TaintedMemWrites uint64
	Syscalls         uint64
}

// MPIEnv is the interface between a machine and its MPI runtime. Call
// handles one MPI syscall; it may block until peers arrive. A returned
// MPIRuntimeError terminates the guest with ReasonMPIError; any other error
// is treated as an OS-level fault.
type MPIEnv interface {
	Call(m *Machine, sys isa.Sys) error
}

// MPIRuntimeError is an error the MPI runtime detected and reported (the
// "MPI error detected" termination class of Table III).
type MPIRuntimeError struct {
	Op  string
	Msg string
}

func (e *MPIRuntimeError) Error() string {
	return fmt.Sprintf("mpi: %s: %s", e.Op, e.Msg)
}

// AbortedError carries a world-abort termination out of an interrupted MPI
// operation. A rank woken from a blocked send/recv/collective by an abort
// adopts the abort's own termination verbatim — so a wall-clock watchdog
// kill surfaces as ReasonTimeout on every rank, not as a synthesized MPI
// error on the ones that happened to be blocked.
type AbortedError struct{ Term Termination }

func (e *AbortedError) Error() string { return e.Term.Msg }

// Config parameterizes machine construction.
type Config struct {
	// MaxInstructions caps execution; 0 selects DefaultMaxInstructions.
	MaxInstructions uint64
	// SampleInterval for the tainted-byte sampler; 0 selects
	// DefaultSampleInterval.
	SampleInterval uint64
	// Rank and WorldSize identify the process within an MPI world; both are
	// zero / one for standalone processes.
	Rank      int
	WorldSize int
	// MPI supplies the MPI runtime; nil machines fail MPI syscalls.
	MPI MPIEnv
	// PID is the guest process id reported through VMI; 0 lets the platform
	// assign one.
	PID int
	// BaseCache, when non-nil, is the shared translation cache the machine's
	// translator serves clean blocks from (and publishes them into). All
	// machines of a campaign share one cache so the guest program is
	// translated once, not once per rank per run. Nil gives the machine a
	// private cache.
	BaseCache *tcg.BaseCache
	// Obs, when non-nil, receives the machine's execution telemetry: hot-loop
	// counters are flushed into it once at run end (the interpreter itself is
	// never instrumented live), and the translator's latency histogram is
	// attached. Nil disables all telemetry at zero cost.
	Obs *obs.Registry
	// NoFastPath forces every block through the full taint-aware interpreter
	// loop even when taint is off or the shadow is empty. The specialized
	// fast loop is observationally identical, so this exists only for the
	// ablation benchmarks and differential tests that prove it.
	NoFastPath bool
	// Events, when non-nil, receives structured run-lifecycle events (rank
	// termination). The interpreter loops never emit — only run-edge code
	// does — so a nil sink costs nothing and an enabled one costs one Emit
	// per rank per run.
	Events *obs.Sink
}

// Machine is one guest process.
type Machine struct {
	// Name and PID identify the process for VMI.
	Name string
	PID  int
	// Rank and WorldSize locate the process in its MPI world.
	Rank      int
	WorldSize int

	Prog   *isa.Program
	Mem    *Memory
	Trans  *tcg.Translator
	Shadow *taint.Shadow
	Hooks  Hooks

	// TaintEnabled toggles taint propagation (DECAF++-style elastic
	// tainting: off for plain fault-injection runs, on for tracing runs).
	TaintEnabled bool

	// regs is sized to the full uint8 MReg index space (only the first
	// NumMRegs entries are live) so the interpreter's register accesses
	// compile without bounds checks.
	regs  [256]uint64
	pc    uint64
	flags int64 // last comparison result: -1, 0, +1

	heapBrk    uint64
	maxInstr   uint64
	sampleIv   uint64
	noFastPath bool

	console []byte
	output  []byte

	helpers []Helper
	mpi     MPIEnv

	counters Counters
	term     *Termination
	// pausedIn records the syscall a ReasonPaused termination interrupted
	// (0 when the pause landed at a block boundary); Snapshot uses it to
	// rewind the pc to the syscall instruction and uncount its retirement so
	// a forked continuation re-executes it exactly once.
	pausedIn  isa.Sys
	abort     abortBox
	execTrace *execRing
	chains    chainTable
	prevTB    *chainNode
	// dirtyPerOp lists chain nodes holding unflushed per-opcode execution
	// credit (chainNode.execs != 0); flushPerOp folds them into
	// counters.PerOp before any reader sees the snapshot.
	dirtyPerOp []*chainNode

	obsReg     *obs.Registry
	obsFlushed bool
	events     *obs.Sink
}

// New creates a machine for prog with the standard memory layout mapped:
// data segment, heap, and stack. The code segment is fetched through the
// translator, not data memory.
func New(prog *isa.Program, cfg Config) *Machine {
	m := &Machine{
		Name:       prog.Name,
		PID:        cfg.PID,
		Rank:       cfg.Rank,
		WorldSize:  cfg.WorldSize,
		Prog:       prog,
		Mem:        NewMemory(),
		Trans:      tcg.NewSharedTranslator(prog, cfg.BaseCache),
		Shadow:     taint.NewShadow(),
		heapBrk:    isa.HeapBase,
		maxInstr:   cfg.MaxInstructions,
		sampleIv:   cfg.SampleInterval,
		noFastPath: cfg.NoFastPath,
		mpi:        cfg.MPI,
		obsReg:     cfg.Obs,
		events:     cfg.Events,
	}
	m.Trans.AttachObs(cfg.Obs)
	if m.maxInstr == 0 {
		m.maxInstr = DefaultMaxInstructions
	}
	if m.sampleIv == 0 {
		m.sampleIv = DefaultSampleInterval
	}
	if m.WorldSize == 0 {
		m.WorldSize = 1
	}
	dataSize := uint64(len(prog.Data))
	if dataSize > 0 {
		m.Mem.Map("data", isa.DataBase, (dataSize+PageSize-1)&^uint64(PageSize-1))
		// Initialization faults are impossible: the region was just mapped.
		_ = m.Mem.WriteBytes(isa.DataBase, prog.Data)
	}
	m.Mem.Map("stack", isa.StackTop-isa.StackSize, isa.StackSize)
	m.pc = prog.Entry
	m.regs[tcg.SPReg] = isa.StackTop - 64 // small red zone below the top
	return m
}

// Reg returns the value of a micro-register.
func (m *Machine) Reg(r tcg.MReg) uint64 { return m.regs[r] }

// SetReg sets a micro-register. Chaser's CorruptRegister goes through this.
func (m *Machine) SetReg(r tcg.MReg, v uint64) { m.regs[r] = v }

// GPR returns a guest general-purpose register value.
func (m *Machine) GPR(r isa.Reg) uint64 { return m.regs[tcg.GPR(r)] }

// SetGPR sets a guest general-purpose register.
func (m *Machine) SetGPR(r isa.Reg, v uint64) { m.regs[tcg.GPR(r)] = v }

// FPR returns a guest floating-point register value.
func (m *Machine) FPR(r isa.Reg) float64 {
	return math.Float64frombits(m.regs[tcg.FPR(r)])
}

// SetFPR sets a guest floating-point register.
func (m *Machine) SetFPR(r isa.Reg, v float64) {
	m.regs[tcg.FPR(r)] = math.Float64bits(v)
}

// PC returns the current guest program counter.
func (m *Machine) PC() uint64 { return m.pc }

// Flags returns the comparison flags register (-1, 0 or +1).
func (m *Machine) Flags() int64 { return m.flags }

// Console returns everything the guest printed.
func (m *Machine) Console() string { return string(m.console) }

// Output returns the guest's output file, the artifact compared bit-wise
// against the golden run for SDC classification.
func (m *Machine) Output() []byte {
	out := make([]byte, len(m.output))
	copy(out, m.output)
	return out
}

// OutputLen returns the current length of the guest's output file without
// copying it. Syscall hooks use it to compute the file offset of the bytes
// an output syscall just appended.
func (m *Machine) OutputLen() int { return len(m.output) }

// Counters returns a snapshot of the execution statistics.
func (m *Machine) Counters() Counters {
	m.flushPerOp()
	return m.counters
}

// Terminated returns the final status, or nil while running.
func (m *Machine) Terminated() *Termination { return m.term }

// RegisterHelper installs an instrumentation helper and returns its id for
// use in KHelper micro-ops emitted by translation hooks.
func (m *Machine) RegisterHelper(h Helper) int {
	m.helpers = append(m.helpers, h)
	return len(m.helpers) - 1
}

// Terminate force-stops the machine with the given status. Used by the MPI
// world supervisor to abort peers of a crashed rank.
func (m *Machine) Terminate(t Termination) {
	if m.term == nil {
		m.term = &t
	}
}
