package vm

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMemoryMapAndFault(t *testing.T) {
	m := NewMemory()
	m.Map("heap", 0x1000, 0x2000)
	if !m.Mapped(0x1000) || !m.Mapped(0x2fff) {
		t.Error("mapped addresses reported unmapped")
	}
	if m.Mapped(0xfff) || m.Mapped(0x3000) {
		t.Error("unmapped addresses reported mapped")
	}
	if got := m.RegionName(0x1500); got != "heap" {
		t.Errorf("RegionName = %q", got)
	}
	if got := m.RegionName(0x9000); got != "" {
		t.Errorf("RegionName(unmapped) = %q", got)
	}

	_, err := m.Read8(0x500)
	var seg *SegFaultError
	if !errors.As(err, &seg) {
		t.Fatalf("read fault = %v", err)
	}
	if seg.Addr != 0x500 || seg.Write {
		t.Errorf("SegFaultError = %+v", seg)
	}
	err = m.Write8(0x500, 1)
	if !errors.As(err, &seg) || !seg.Write {
		t.Errorf("write fault = %v", err)
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	m.Map("r", 0x10000, 0x10000)
	if err := m.Write64(0x10008, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read64(0x10008)
	if err != nil || v != 0x1122334455667788 {
		t.Fatalf("Read64 = %#x, %v", v, err)
	}
	// Little-endian byte order.
	b, err := m.Read8(0x10008)
	if err != nil || b != 0x88 {
		t.Errorf("Read8 = %#x, %v", b, err)
	}
	// Unaligned access works.
	if err := m.Write64(0x10003, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read64(0x10003); v != 42 {
		t.Errorf("unaligned Read64 = %d", v)
	}
}

func TestMemoryCrossPage(t *testing.T) {
	m := NewMemory()
	m.Map("r", 0, 3*PageSize)
	addr := uint64(PageSize - 3)
	if err := m.Write64(addr, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read64(addr)
	if err != nil || v != 0xdeadbeefcafef00d {
		t.Errorf("cross-page Read64 = %#x, %v", v, err)
	}
}

func TestMemoryTranslate(t *testing.T) {
	m := NewMemory()
	m.Map("a", 0x10000, PageSize)
	m.Map("b", 0x9_0000, PageSize)
	p1, err := m.Translate(0x10010)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.Translate(0x9_0020)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("distinct pages share a frame")
	}
	if p1%PageSize != 0x10 || p2%PageSize != 0x20 {
		t.Errorf("offsets not preserved: %#x %#x", p1, p2)
	}
	// Same page translates consistently.
	p1b, _ := m.Translate(0x10011)
	if p1b != p1+1 {
		t.Errorf("translate not contiguous within page: %#x vs %#x", p1, p1b)
	}
	if _, err := m.Translate(0x5000_0000); err == nil {
		t.Error("translate of unmapped address succeeded")
	}
}

func TestMemoryBytes(t *testing.T) {
	m := NewMemory()
	m.Map("r", 0x1000, PageSize)
	data := []byte("hello, world")
	if err := m.WriteBytes(0x1004, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBytes(0x1004, uint64(len(data)))
	if err != nil || string(got) != string(data) {
		t.Errorf("ReadBytes = %q, %v", got, err)
	}
	if _, err := m.ReadBytes(0x1000, 2*PageSize); err == nil {
		t.Error("ReadBytes past region succeeded")
	}
	if err := m.WriteBytes(0x1000+PageSize-2, []byte("abcd")); err == nil {
		t.Error("WriteBytes past region succeeded")
	}
}

// Property: a write followed by a read returns the written value, for
// arbitrary in-region addresses and values.
func TestMemoryRoundTripQuick(t *testing.T) {
	m := NewMemory()
	const base, size = 0x2000_0000, 1 << 16
	m.Map("r", base, size)
	f := func(off uint16, v uint64) bool {
		addr := uint64(base) + uint64(off)%(size-8)
		if err := m.Write64(addr, v); err != nil {
			return false
		}
		got, err := m.Read64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
