package vm

import (
	"testing"

	"chaser/internal/asm"
	"chaser/internal/isa"
	"chaser/internal/tcg"
)

// These tests exercise end-to-end taint propagation through the execution
// engine: register -> arithmetic -> memory -> register, the tainted
// read/write callbacks, overwrite-with-clean clearing, and sampling.

func taintedRun(t *testing.T, src string, seed func(m *Machine)) (*Machine, Termination, []MemTaintEvent, []MemTaintEvent) {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(p, Config{})
	m.TaintEnabled = true
	var reads, writes []MemTaintEvent
	m.Hooks.TaintedMemRead = func(ev MemTaintEvent) { reads = append(reads, ev) }
	m.Hooks.TaintedMemWrite = func(ev MemTaintEvent) { writes = append(writes, ev) }
	if seed != nil {
		seed(m)
	}
	term := m.Run()
	return m, term, reads, writes
}

// seedAfter runs a helper before the first execution of the given opcode to
// taint a register, emulating a just-injected fault.
func seedTaintHook(m *Machine, target isa.Op, reg tcg.MReg, mask uint64) {
	fired := false
	id := m.RegisterHelper(func(mm *Machine, op *tcg.Op) {
		if !fired {
			fired = true
			mm.Shadow.SetRegMask(reg, mask)
		}
	})
	m.Trans.AddHook(func(ins isa.Instr, pc uint64) []tcg.Op {
		if ins.Op == target {
			return []tcg.Op{{Kind: tcg.KHelper, Helper: id}}
		}
		return nil
	})
}

func TestTaintFlowsThroughArithmeticToMemory(t *testing.T) {
	src := `
main:
    movi r1, 5
    movi r2, 3
    add r3, r1, r2      ; r3 tainted via r1
    movi r4, 0x20000000
    movi r5, 64
    mov r1, r5
    syscall 8           ; alloc(64) -> r0
    st [r0+0], r3       ; tainted store
    ld r6, [r0+0]       ; tainted load
    hlt
`
	m, term, reads, writes := taintedRun(t, src, func(m *Machine) {
		seedTaintHook(m, isa.OpAdd, tcg.GPR(isa.R1), 1<<4)
	})
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if got := m.Shadow.RegMask(tcg.GPR(isa.R3)); got == 0 {
		t.Error("r3 not tainted after add with tainted source")
	}
	if got := m.Shadow.RegMask(tcg.GPR(isa.R6)); got == 0 {
		t.Error("r6 not tainted after load of tainted memory")
	}
	if len(writes) != 1 {
		t.Fatalf("tainted writes = %d, want 1", len(writes))
	}
	if len(reads) != 1 {
		t.Fatalf("tainted reads = %d, want 1", len(reads))
	}
	ev := writes[0]
	if ev.VAddr != isa.HeapBase {
		t.Errorf("write vaddr = %#x, want %#x", ev.VAddr, isa.HeapBase)
	}
	if ev.PAddr == 0 || ev.PAddr == ev.VAddr {
		t.Errorf("paddr = %#x (must be translated and distinct)", ev.PAddr)
	}
	if ev.Value != 8 {
		t.Errorf("write value = %d, want 8", ev.Value)
	}
	if ev.Mask == 0 || ev.Size != 8 {
		t.Errorf("event = %+v", ev)
	}
	c := m.Counters()
	if c.TaintedMemReads != 1 || c.TaintedMemWrites != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestMovIClearsTaint(t *testing.T) {
	src := `
main:
    movi r1, 5
    add r2, r1, r1
    movi r2, 9          ; constant overwrite clears taint
    hlt
`
	m, term, _, _ := taintedRun(t, src, func(m *Machine) {
		seedTaintHook(m, isa.OpAdd, tcg.GPR(isa.R1), 1)
	})
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if got := m.Shadow.RegMask(tcg.GPR(isa.R2)); got != 0 {
		t.Errorf("r2 mask = %#x, want 0 after movi", got)
	}
}

func TestCleanStoreClearsMemoryTaint(t *testing.T) {
	// Fig. 7's drop-to-zero effect: tainted bytes are overwritten by the
	// program with clean data.
	src := `
main:
    movi r1, 64
    syscall alloc
    movi r2, 7
    add r3, r2, r2
    st [r0+0], r3       ; taint 8 bytes
    movi r4, 0
    st [r0+0], r4       ; overwrite with clean data
    hlt
`
	m, term, _, writes := taintedRun(t, src, func(m *Machine) {
		seedTaintHook(m, isa.OpAdd, tcg.GPR(isa.R2), 0xff)
	})
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if got := m.Shadow.TaintedBytes(); got != 0 {
		t.Errorf("tainted bytes = %d, want 0 after clean overwrite", got)
	}
	if len(writes) != 1 {
		t.Errorf("tainted write events = %d, want 1 (clean store is silent)", len(writes))
	}
}

func TestFloatTaintPropagation(t *testing.T) {
	src := `
main:
    fmovi f1, 1.5
    fmovi f2, 2.0
    fadd f3, f1, f2
    fmul f4, f3, f2
    hlt
`
	m, term, _, _ := taintedRun(t, src, func(m *Machine) {
		seedTaintHook(m, isa.OpFAdd, tcg.FPR(isa.F1), 1<<52)
	})
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if got := m.Shadow.RegMask(tcg.FPR(isa.F3)); got != ^uint64(0) {
		t.Errorf("f3 mask = %#x, want full smear", got)
	}
	if got := m.Shadow.RegMask(tcg.FPR(isa.F4)); got != ^uint64(0) {
		t.Errorf("f4 mask = %#x, want full smear", got)
	}
}

func TestTaintDisabledIsFree(t *testing.T) {
	src := `
main:
    movi r1, 5
    add r2, r1, r1
    movi r3, 64
    mov r1, r3
    syscall alloc
    st [r0+0], r2
    hlt
`
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{})
	// Taint disabled: even with a seeded mask nothing propagates.
	m.Shadow.SetRegMask(tcg.GPR(isa.R1), 0xff)
	term := m.Run()
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if got := m.Counters().TaintedMemWrites; got != 0 {
		t.Errorf("tainted writes with taint disabled = %d", got)
	}
	if got := m.Shadow.TaintedBytes(); got != 0 {
		t.Errorf("tainted bytes = %d", got)
	}
}

func TestSampleHook(t *testing.T) {
	// A long loop with a small sample interval fires the sampler.
	src := `
main:
    movi r2, 5000
loop:
    addi r2, r2, -1
    cmpi r2, 0
    jg loop
    hlt
`
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{SampleInterval: 1000})
	m.TaintEnabled = true
	var samples []uint64
	m.Hooks.Sample = func(instrs uint64, tainted int64) {
		samples = append(samples, instrs)
	}
	term := m.Run()
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if len(samples) < 10 {
		t.Errorf("samples = %d, want >= 10", len(samples))
	}
	for i, s := range samples {
		if s%1000 != 0 {
			t.Errorf("sample %d at %d not on interval", i, s)
		}
	}
}

func TestByteTaint(t *testing.T) {
	src := `
main:
    movi r1, 64
    syscall alloc
    movi r2, 0xab
    add r3, r2, r2
    stb [r0+3], r3
    ldb r4, [r0+3]
    hlt
`
	m, term, reads, writes := taintedRun(t, src, func(m *Machine) {
		seedTaintHook(m, isa.OpAdd, tcg.GPR(isa.R2), 0x1)
	})
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if got := m.Shadow.TaintedBytes(); got != 1 {
		t.Errorf("tainted bytes = %d, want 1", got)
	}
	if m.Shadow.RegMask(tcg.GPR(isa.R4)) == 0 {
		t.Error("byte load did not pick up taint")
	}
	if len(reads) != 1 || len(writes) != 1 {
		t.Errorf("events: %d reads, %d writes", len(reads), len(writes))
	}
	if reads[0].Size != 1 || writes[0].Size != 1 {
		t.Error("event sizes wrong")
	}
}
