package vm

import (
	"strings"
	"testing"

	"chaser/internal/asm"
	"chaser/internal/isa"
	"chaser/internal/tcg"
)

// These tests cover the smaller accessors, string forms and error paths the
// larger behavioural tests skip over.

func TestTerminationStrings(t *testing.T) {
	tests := []struct {
		term Termination
		want string
	}{
		{Termination{Reason: ReasonExited, Code: 3}, "exited(3)"},
		{Termination{Reason: ReasonSignal, Signal: SIGSEGV, PC: 0x10, Msg: "boom"}, "killed(SIGSEGV)"},
		{Termination{Reason: ReasonAssert, Code: 7, PC: 0x20}, "assert-failed(code=7)"},
		{Termination{Reason: ReasonMPIError, Msg: "x"}, "mpi-error"},
		{Termination{Reason: ReasonBudget}, "budget-exhausted"},
	}
	for _, tt := range tests {
		if got := tt.term.String(); !strings.Contains(got, tt.want) {
			t.Errorf("String() = %q, want contains %q", got, tt.want)
		}
	}
	if !(Termination{Reason: ReasonSignal}).Abnormal() {
		t.Error("signal not abnormal")
	}
	if (Termination{Reason: ReasonExited, Code: 1}).Abnormal() {
		t.Error("non-zero exit counted abnormal (it is a normal termination)")
	}
	if !(Termination{Reason: ReasonExited}).OK() {
		t.Error("clean exit not OK")
	}
	if (Termination{Reason: ReasonExited, Code: 1}).OK() {
		t.Error("exit(1) reported OK")
	}
}

func TestSignalAndReasonNames(t *testing.T) {
	if SIGSEGV.String() != "SIGSEGV" || SIGFPE.String() != "SIGFPE" ||
		SIGILL.String() != "SIGILL" || SigNone.String() != "none" {
		t.Error("signal names wrong")
	}
	if Signal(99).String() == "" {
		t.Error("unknown signal empty")
	}
	names := map[Reason]string{
		ReasonExited: "exited", ReasonSignal: "signal", ReasonAssert: "assert-failed",
		ReasonMPIError: "mpi-error", ReasonBudget: "budget-exhausted",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("Reason(%d) = %q, want %q", r, r.String(), want)
		}
	}
	if Reason(99).String() == "" {
		t.Error("unknown reason empty")
	}
}

func TestMachineAccessors(t *testing.T) {
	p, err := asm.Assemble("t", `
main:
    movi r1, 5
    movi r2, 9
    cmp r1, r2
    hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{})
	if m.PC() != isa.CodeBase {
		t.Errorf("initial pc = %#x", m.PC())
	}
	m.SetReg(tcg.GPR(isa.R7), 0xbeef)
	if m.Reg(tcg.GPR(isa.R7)) != 0xbeef {
		t.Error("Reg/SetReg round trip")
	}
	term := m.Run()
	if term.Reason != ReasonExited {
		t.Fatal(term)
	}
	if m.Flags() != -1 { // 5 < 9
		t.Errorf("flags = %d, want -1", m.Flags())
	}
}

func TestTerminateIdempotent(t *testing.T) {
	p, err := asm.Assemble("t", "main:\n hlt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{})
	m.Terminate(Termination{Reason: ReasonMPIError, Msg: "first"})
	m.Terminate(Termination{Reason: ReasonExited})
	if got := m.Terminated(); got == nil || got.Msg != "first" {
		t.Errorf("Terminate not first-wins: %v", got)
	}
}

func TestMPIRuntimeErrorString(t *testing.T) {
	e := &MPIRuntimeError{Op: "MPI_Send", Msg: "invalid rank 9"}
	if !strings.Contains(e.Error(), "MPI_Send") || !strings.Contains(e.Error(), "invalid rank") {
		t.Errorf("error = %q", e.Error())
	}
}

func TestSegFaultErrorForms(t *testing.T) {
	r := &SegFaultError{Addr: 0x10, Write: false}
	w := &SegFaultError{Addr: 0x20, Write: true}
	if !strings.Contains(r.Error(), "read") || !strings.Contains(w.Error(), "write") {
		t.Errorf("segfault strings: %q / %q", r, w)
	}
}

// mpiStub returns a scripted error from the MPI env.
type mpiStub struct{ err error }

func (s mpiStub) Call(m *Machine, sys isa.Sys) error { return s.err }

func TestMPIEnvErrorMapping(t *testing.T) {
	src := "main:\n syscall mpi_barrier\n hlt\n"
	mk := func(err error) Termination {
		p, aerr := asm.Assemble("t", src)
		if aerr != nil {
			t.Fatal(aerr)
		}
		m := New(p, Config{MPI: mpiStub{err: err}})
		return m.Run()
	}
	// MPIRuntimeError -> ReasonMPIError.
	if term := mk(&MPIRuntimeError{Op: "x", Msg: "y"}); term.Reason != ReasonMPIError {
		t.Errorf("mpi error term = %v", term)
	}
	// SegFaultError -> SIGSEGV.
	if term := mk(&SegFaultError{Addr: 1}); term.Signal != SIGSEGV {
		t.Errorf("segfault term = %v", term)
	}
	// Arbitrary error -> ReasonMPIError.
	if term := mk(errFake{}); term.Reason != ReasonMPIError {
		t.Errorf("generic error term = %v", term)
	}
	// nil error -> success.
	if term := mk(nil); term.Reason != ReasonExited {
		t.Errorf("success term = %v", term)
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake" }

func TestOutBytesTooLarge(t *testing.T) {
	_, term := run(t, `
main:
    movi r1, 0x10000000
    movi r2, 99999999
    syscall out_bytes
    hlt
`)
	if term.Signal != SIGSEGV {
		t.Errorf("term = %v, want SIGSEGV on oversized out_bytes", term)
	}
}

func TestPrintStrTooLong(t *testing.T) {
	_, term := run(t, `
main:
    movi r1, 0x10000000
    movi r2, 9999999
    syscall print_str
    hlt
`)
	if term.Signal != SIGSEGV {
		t.Errorf("term = %v", term)
	}
}

func TestStepOnFetchFault(t *testing.T) {
	p, err := asm.Assemble("t", "main:\n movi r1, 0x999990\n push r1\n ret\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{})
	for i := 0; i < 10; i++ {
		if term := m.Step(); term != nil {
			if term.Signal != SIGSEGV {
				t.Errorf("term = %v", term)
			}
			return
		}
	}
	t.Fatal("never faulted")
}

func TestWrite64CrossPageFault(t *testing.T) {
	// A 64-bit write straddling the end of the last mapped page faults.
	m := NewMemory()
	m.Map("r", 0, PageSize)
	if err := m.Write64(PageSize-4, 1); err == nil {
		t.Error("cross-boundary write succeeded")
	}
	if _, err := m.Read64(PageSize - 4); err == nil {
		t.Error("cross-boundary read succeeded")
	}
}
