package vm

import (
	"math"
	"math/rand"
	"testing"

	"chaser/internal/isa"
	"chaser/internal/tcg"
)

// refState is a Go-side reference model of the guest machine for
// straight-line code: the differential test generates random programs,
// executes them both through the TCG engine and through this direct
// evaluator, and requires bit-identical register files at the end.
type refState struct {
	gpr [16]uint64
	fpr [16]float64
}

func (r *refState) exec(ins isa.Instr) {
	a, b := r.gpr[ins.Rs1], r.gpr[ins.Rs2]
	switch ins.Op {
	case isa.OpMovI:
		r.gpr[ins.Rd] = uint64(ins.Imm)
	case isa.OpMov:
		r.gpr[ins.Rd] = a
	case isa.OpAdd:
		r.gpr[ins.Rd] = a + b
	case isa.OpSub:
		r.gpr[ins.Rd] = a - b
	case isa.OpMul:
		r.gpr[ins.Rd] = a * b
	case isa.OpAddI:
		r.gpr[ins.Rd] = a + uint64(ins.Imm)
	case isa.OpMulI:
		r.gpr[ins.Rd] = a * uint64(ins.Imm)
	case isa.OpAnd:
		r.gpr[ins.Rd] = a & b
	case isa.OpOr:
		r.gpr[ins.Rd] = a | b
	case isa.OpXor:
		r.gpr[ins.Rd] = a ^ b
	case isa.OpShl:
		if b >= 64 {
			r.gpr[ins.Rd] = 0
		} else {
			r.gpr[ins.Rd] = a << b
		}
	case isa.OpShr:
		if b >= 64 {
			r.gpr[ins.Rd] = 0
		} else {
			r.gpr[ins.Rd] = a >> b
		}
	case isa.OpNot:
		r.gpr[ins.Rd] = ^a
	case isa.OpFMovI:
		r.fpr[ins.Rd] = math.Float64frombits(uint64(ins.Imm))
	case isa.OpFMov:
		r.fpr[ins.Rd] = r.fpr[ins.Rs1]
	case isa.OpFAdd:
		r.fpr[ins.Rd] = r.fpr[ins.Rs1] + r.fpr[ins.Rs2]
	case isa.OpFSub:
		r.fpr[ins.Rd] = r.fpr[ins.Rs1] - r.fpr[ins.Rs2]
	case isa.OpFMul:
		r.fpr[ins.Rd] = r.fpr[ins.Rs1] * r.fpr[ins.Rs2]
	case isa.OpFDiv:
		r.fpr[ins.Rd] = r.fpr[ins.Rs1] / r.fpr[ins.Rs2]
	case isa.OpFNeg:
		r.fpr[ins.Rd] = -r.fpr[ins.Rs1]
	case isa.OpCvtIF:
		r.fpr[ins.Rd] = float64(int64(a))
	}
}

// genStraightLine builds a random block of arithmetic over pre-seeded
// registers, avoiding traps (div/mod excluded; cvtfi excluded to dodge
// NaN/range clamping differences by construction — cvtfi is covered by
// dedicated unit tests).
func genStraightLine(rng *rand.Rand, n int) []isa.Instr {
	intOps := []isa.Op{
		isa.OpMovI, isa.OpMov, isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAddI,
		isa.OpMulI, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpNot,
	}
	floatOps := []isa.Op{
		isa.OpFMovI, isa.OpFMov, isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv,
		isa.OpFNeg, isa.OpCvtIF,
	}
	code := make([]isa.Instr, 0, n+1)
	reg := func() isa.Reg { return isa.Reg(rng.Intn(13)) } // avoid FP/SP
	for i := 0; i < n; i++ {
		var op isa.Op
		if rng.Intn(2) == 0 {
			op = intOps[rng.Intn(len(intOps))]
		} else {
			op = floatOps[rng.Intn(len(floatOps))]
		}
		ins := isa.Instr{Op: op, Rd: reg(), Rs1: reg(), Rs2: reg()}
		switch op {
		case isa.OpMovI, isa.OpAddI, isa.OpMulI:
			ins.Imm = rng.Int63() - rng.Int63()
		case isa.OpFMovI:
			ins.Imm = int64(math.Float64bits(rng.NormFloat64() * 100))
		}
		code = append(code, ins)
	}
	code = append(code, isa.Instr{Op: isa.OpHlt})
	return code
}

func TestEngineMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		code := genStraightLine(rng, 40)
		prog := &isa.Program{Name: "diff", Entry: isa.CodeBase, Code: code}

		m := New(prog, Config{})
		var ref refState
		// Seed both models with identical register files.
		for r := 0; r < 13; r++ {
			v := rng.Uint64()
			m.SetGPR(isa.Reg(r), v)
			ref.gpr[r] = v
			f := rng.NormFloat64() * 10
			m.SetFPR(isa.Reg(r), f)
			ref.fpr[r] = f
		}
		for _, ins := range code[:len(code)-1] {
			ref.exec(ins)
		}
		term := m.Run()
		if term.Reason != ReasonExited {
			t.Fatalf("trial %d: %v\n%s", trial, term, prog.Disassemble())
		}
		for r := 0; r < 13; r++ {
			if got := m.GPR(isa.Reg(r)); got != ref.gpr[r] {
				t.Fatalf("trial %d: r%d = %#x, ref %#x\n%s",
					trial, r, got, ref.gpr[r], prog.Disassemble())
			}
			got := math.Float64bits(m.FPR(isa.Reg(r)))
			want := math.Float64bits(ref.fpr[r])
			if got != want {
				t.Fatalf("trial %d: f%d = %#x, ref %#x\n%s",
					trial, r, got, want, prog.Disassemble())
			}
		}
	}
}

// TestEngineMatchesReferenceWithTaint re-runs the differential check with
// taint tracking enabled: taint must never alter architectural state.
func TestEngineMatchesReferenceWithTaint(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 50; trial++ {
		code := genStraightLine(rng, 40)
		prog := &isa.Program{Name: "diff", Entry: isa.CodeBase, Code: code}

		plain := New(prog, Config{})
		tainted := New(prog, Config{})
		tainted.TaintEnabled = true
		for r := 0; r < 13; r++ {
			v := rng.Uint64()
			plain.SetGPR(isa.Reg(r), v)
			tainted.SetGPR(isa.Reg(r), v)
			tainted.Shadow.SetRegMask(tcg.GPR(isa.Reg(r)), rng.Uint64())
		}
		t1 := plain.Run()
		t2 := tainted.Run()
		if t1.Reason != ReasonExited || t2.Reason != ReasonExited {
			t.Fatalf("trial %d: %v / %v", trial, t1, t2)
		}
		for r := 0; r < 16; r++ {
			if plain.GPR(isa.Reg(r)) != tainted.GPR(isa.Reg(r)) {
				t.Fatalf("trial %d: taint altered r%d", trial, r)
			}
			if math.Float64bits(plain.FPR(isa.Reg(r))) != math.Float64bits(tainted.FPR(isa.Reg(r))) {
				t.Fatalf("trial %d: taint altered f%d", trial, r)
			}
		}
	}
}
