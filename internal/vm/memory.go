package vm

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the guest page granularity.
const PageSize = 4096

// SegFaultError reports a guest access outside any mapped region; the VM
// turns it into a SIGSEGV termination, the dominant "OS exception" outcome
// in the paper's fault-injection campaigns.
type SegFaultError struct {
	Addr  uint64
	Write bool
}

func (e *SegFaultError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("vm: segmentation fault: %s at %#x", kind, e.Addr)
}

type memPage struct {
	data  [PageSize]byte
	frame uint64 // physical frame number, assigned at first touch
}

type region struct {
	name       string
	base, size uint64
}

func (r region) contains(addr uint64) bool {
	return addr >= r.base && addr-r.base < r.size
}

// Memory is the paged guest address space. Pages are allocated lazily inside
// explicitly mapped regions; any access outside a mapped region faults.
// Each page receives a physical frame at first touch, giving distinct
// virtual and physical addresses for propagation-log records.
// tlbSize is the number of direct-mapped TLB entries; guests interleave
// stack, data, and a working set of heap pages (a 48x48 float matrix spans
// five), so the size is chosen to keep conflict misses rare rather than
// merely to beat a single-entry cache.
const tlbSize = 8

type tlbEntry struct {
	base uint64
	page *memPage
}

type Memory struct {
	pages     map[uint64]*memPage
	regions   []region
	nextFrame uint64
	// tlb is a direct-mapped translation cache over the page map: the map
	// lookup dominates the interpreter's memory cost without it. Pages are
	// never unmapped or replaced, so entries need no invalidation.
	tlb [tlbSize]tlbEntry
}

// NewMemory creates an empty address space with no mapped regions.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*memPage), nextFrame: 1}
}

// lookup returns the cached page for an aligned page base, or nil on a TLB
// miss. Small enough to inline into every memory accessor.
func (m *Memory) lookup(base uint64) *memPage {
	e := &m.tlb[(base/PageSize)%tlbSize]
	if e.page != nil && e.base == base {
		return e.page
	}
	return nil
}

// Map adds a readable/writable region. Overlapping maps are allowed; lookup
// succeeds if any region covers the address.
func (m *Memory) Map(name string, base, size uint64) {
	m.regions = append(m.regions, region{name: name, base: base, size: size})
}

// Mapped reports whether addr falls inside a mapped region.
func (m *Memory) Mapped(addr uint64) bool {
	for _, r := range m.regions {
		if r.contains(addr) {
			return true
		}
	}
	return false
}

// RegionName returns the name of the mapped region containing addr, or "".
func (m *Memory) RegionName(addr uint64) string {
	for _, r := range m.regions {
		if r.contains(addr) {
			return r.name
		}
	}
	return ""
}

func (m *Memory) page(addr uint64, write bool) (*memPage, uint64, error) {
	base := addr &^ (PageSize - 1)
	if p := m.lookup(base); p != nil {
		return p, addr - base, nil
	}
	p, ok := m.pages[base]
	if !ok {
		if !m.Mapped(addr) {
			return nil, 0, &SegFaultError{Addr: addr, Write: write}
		}
		p = &memPage{frame: m.nextFrame}
		m.nextFrame++
		m.pages[base] = p
	}
	m.tlb[(base/PageSize)%tlbSize] = tlbEntry{base: base, page: p}
	return p, addr - base, nil
}

// Translate returns the physical address backing a virtual address, mapping
// the page in if needed. It fails with a SegFaultError outside mapped
// regions.
func (m *Memory) Translate(addr uint64) (uint64, error) {
	p, off, err := m.page(addr, false)
	if err != nil {
		return 0, err
	}
	return p.frame*PageSize + off, nil
}

// Read8 loads one byte.
func (m *Memory) Read8(addr uint64) (uint8, error) {
	base := addr &^ (PageSize - 1)
	if p := m.lookup(base); p != nil {
		return p.data[addr-base], nil
	}
	p, off, err := m.page(addr, false)
	if err != nil {
		return 0, err
	}
	return p.data[off], nil
}

// Write8 stores one byte.
func (m *Memory) Write8(addr uint64, v uint8) error {
	base := addr &^ (PageSize - 1)
	if p := m.lookup(base); p != nil {
		p.data[addr-base] = v
		return nil
	}
	p, off, err := m.page(addr, true)
	if err != nil {
		return err
	}
	p.data[off] = v
	return nil
}

// Read64 loads a 64-bit little-endian word. No alignment is required.
func (m *Memory) Read64(addr uint64) (uint64, error) {
	base := addr &^ (PageSize - 1)
	if p := m.lookup(base); p != nil && addr-base <= PageSize-8 {
		return binary.LittleEndian.Uint64(p.data[addr-base : addr-base+8]), nil
	}
	p, off, err := m.page(addr, false)
	if err != nil {
		return 0, err
	}
	if off <= PageSize-8 {
		return binary.LittleEndian.Uint64(p.data[off : off+8]), nil
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		b, err := m.Read8(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint64(b) << (8 * i)
	}
	return v, nil
}

// Write64 stores a 64-bit little-endian word. No alignment is required.
func (m *Memory) Write64(addr uint64, v uint64) error {
	base := addr &^ (PageSize - 1)
	if p := m.lookup(base); p != nil && addr-base <= PageSize-8 {
		binary.LittleEndian.PutUint64(p.data[addr-base:addr-base+8], v)
		return nil
	}
	p, off, err := m.page(addr, true)
	if err != nil {
		return err
	}
	if off <= PageSize-8 {
		binary.LittleEndian.PutUint64(p.data[off:off+8], v)
		return nil
	}
	for i := uint64(0); i < 8; i++ {
		if err := m.Write8(addr+i, uint8(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr, n uint64) ([]byte, error) {
	out := make([]byte, n)
	for i := uint64(0); i < n; i++ {
		b, err := m.Read8(addr + i)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// WriteBytes copies data into guest memory at addr.
func (m *Memory) WriteBytes(addr uint64, data []byte) error {
	for i, b := range data {
		if err := m.Write8(addr+uint64(i), b); err != nil {
			return err
		}
	}
	return nil
}
