package vm

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the guest page granularity.
const PageSize = 4096

// SegFaultError reports a guest access outside any mapped region; the VM
// turns it into a SIGSEGV termination, the dominant "OS exception" outcome
// in the paper's fault-injection campaigns.
type SegFaultError struct {
	Addr  uint64
	Write bool
}

func (e *SegFaultError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("vm: segmentation fault: %s at %#x", kind, e.Addr)
}

// memPage is one guest page. A sealed page belongs to an immutable snapshot
// generation: it may be shared read-only by any number of forked address
// spaces and is never written again — a write through any fork (or the
// original) first replaces it with a private copy (copy-on-write). The copy
// keeps the frame number, so physical addresses are stable across
// snapshot/fork and propagation-log records match a from-scratch run bitwise.
type memPage struct {
	data   [PageSize]byte
	frame  uint64 // physical frame number, assigned at first touch
	sealed bool
}

type region struct {
	name       string
	base, size uint64
}

func (r region) contains(addr uint64) bool {
	return addr >= r.base && addr-r.base < r.size
}

// Memory is the paged guest address space. Pages are allocated lazily inside
// explicitly mapped regions; any access outside a mapped region faults.
// Each page receives a physical frame at first touch, giving distinct
// virtual and physical addresses for propagation-log records.
// tlbSize is the number of direct-mapped TLB entries; guests interleave
// stack, data, and a working set of heap pages (a 48x48 float matrix spans
// five), so the size is chosen to keep conflict misses rare rather than
// merely to beat a single-entry cache.
const tlbSize = 8

type tlbEntry struct {
	base uint64
	page *memPage
}

type Memory struct {
	pages     map[uint64]*memPage
	regions   []region
	nextFrame uint64
	// tlb is a direct-mapped translation cache over the page map: the map
	// lookup dominates the interpreter's memory cost without it. Only private
	// (unsealed) pages are ever cached, so a TLB hit is always safe to write
	// through — the interpreter's inlined store paths rely on this. Snapshot
	// seals every page and resets the TLB; a COW copy refreshes the entry.
	tlb [tlbSize]tlbEntry
	// cowCopies counts pages privatized by copy-on-write since creation
	// (telemetry: vm_cow_page_copies_total).
	cowCopies uint64
}

// NewMemory creates an empty address space with no mapped regions.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*memPage), nextFrame: 1}
}

// lookup returns the cached page for an aligned page base, or nil on a TLB
// miss. Small enough to inline into every memory accessor. Cached pages are
// always private to this Memory, so a hit may be read or written directly.
func (m *Memory) lookup(base uint64) *memPage {
	e := &m.tlb[(base/PageSize)%tlbSize]
	if e.page != nil && e.base == base {
		return e.page
	}
	return nil
}

// Map adds a readable/writable region. Overlapping maps are allowed; lookup
// succeeds if any region covers the address.
func (m *Memory) Map(name string, base, size uint64) {
	m.regions = append(m.regions, region{name: name, base: base, size: size})
}

// Mapped reports whether addr falls inside a mapped region.
func (m *Memory) Mapped(addr uint64) bool {
	for _, r := range m.regions {
		if r.contains(addr) {
			return true
		}
	}
	return false
}

// RegionName returns the name of the mapped region containing addr, or "".
func (m *Memory) RegionName(addr uint64) string {
	for _, r := range m.regions {
		if r.contains(addr) {
			return r.name
		}
	}
	return ""
}

func (m *Memory) page(addr uint64, write bool) (*memPage, uint64, error) {
	base := addr &^ (PageSize - 1)
	if p := m.lookup(base); p != nil {
		return p, addr - base, nil
	}
	p, ok := m.pages[base]
	switch {
	case !ok:
		if !m.Mapped(addr) {
			return nil, 0, &SegFaultError{Addr: addr, Write: write}
		}
		p = &memPage{frame: m.nextFrame}
		m.nextFrame++
		m.pages[base] = p
	case p.sealed:
		if !write {
			// Reads may share the sealed page, but it must never enter the
			// TLB: cached pages are written through directly.
			return p, addr - base, nil
		}
		// Copy-on-write: privatize the page, keeping its frame so physical
		// addresses stay stable across snapshot/fork.
		cp := &memPage{data: p.data, frame: p.frame}
		m.pages[base] = cp
		m.cowCopies++
		p = cp
	}
	m.tlb[(base/PageSize)%tlbSize] = tlbEntry{base: base, page: p}
	return p, addr - base, nil
}

// MemImage is an immutable snapshot of an address space. All pages it
// references are sealed: forks created from it share them and privatize
// pages on first write.
type MemImage struct {
	pages     map[uint64]*memPage
	regions   []region
	nextFrame uint64
}

// Bytes returns the resident size of the image (page data only), the
// quantity snapshot caches account against their memory cap.
func (img *MemImage) Bytes() int64 { return int64(len(img.pages)) * PageSize }

// Snapshot freezes the current page set into an immutable image. Every page
// becomes sealed — including in this Memory, whose next write to any of them
// will privatize a copy — and the TLB is reset so no writable pointer to a
// now-shared page survives.
func (m *Memory) Snapshot() *MemImage {
	pages := make(map[uint64]*memPage, len(m.pages))
	for base, p := range m.pages {
		p.sealed = true
		pages[base] = p
	}
	m.tlb = [tlbSize]tlbEntry{}
	return &MemImage{
		pages:     pages,
		regions:   append([]region(nil), m.regions...),
		nextFrame: m.nextFrame,
	}
}

// NewMemoryFromImage creates a forked address space sharing the image's
// sealed pages. Writes privatize pages (copy-on-write); new pages continue
// the image's frame numbering, so first-touch order yields the same physical
// addresses a from-scratch run would assign.
func NewMemoryFromImage(img *MemImage) *Memory {
	pages := make(map[uint64]*memPage, len(img.pages))
	for base, p := range img.pages {
		pages[base] = p
	}
	return &Memory{
		pages:     pages,
		regions:   append([]region(nil), img.regions...),
		nextFrame: img.nextFrame,
	}
}

// CowCopies returns the number of pages this Memory privatized via
// copy-on-write.
func (m *Memory) CowCopies() uint64 { return m.cowCopies }

// Translate returns the physical address backing a virtual address, mapping
// the page in if needed. It fails with a SegFaultError outside mapped
// regions.
func (m *Memory) Translate(addr uint64) (uint64, error) {
	p, off, err := m.page(addr, false)
	if err != nil {
		return 0, err
	}
	return p.frame*PageSize + off, nil
}

// Read8 loads one byte.
func (m *Memory) Read8(addr uint64) (uint8, error) {
	base := addr &^ (PageSize - 1)
	if p := m.lookup(base); p != nil {
		return p.data[addr-base], nil
	}
	p, off, err := m.page(addr, false)
	if err != nil {
		return 0, err
	}
	return p.data[off], nil
}

// Write8 stores one byte.
func (m *Memory) Write8(addr uint64, v uint8) error {
	base := addr &^ (PageSize - 1)
	if p := m.lookup(base); p != nil {
		p.data[addr-base] = v
		return nil
	}
	p, off, err := m.page(addr, true)
	if err != nil {
		return err
	}
	p.data[off] = v
	return nil
}

// Read64 loads a 64-bit little-endian word. No alignment is required.
func (m *Memory) Read64(addr uint64) (uint64, error) {
	base := addr &^ (PageSize - 1)
	if p := m.lookup(base); p != nil && addr-base <= PageSize-8 {
		return binary.LittleEndian.Uint64(p.data[addr-base : addr-base+8]), nil
	}
	p, off, err := m.page(addr, false)
	if err != nil {
		return 0, err
	}
	if off <= PageSize-8 {
		return binary.LittleEndian.Uint64(p.data[off : off+8]), nil
	}
	// Page-straddling load: resolve the second page once and stitch the two
	// fragments instead of eight per-byte lookups.
	p2, _, err := m.page(base+PageSize, false)
	if err != nil {
		return 0, err
	}
	var buf [8]byte
	k := copy(buf[:], p.data[off:])
	copy(buf[k:], p2.data[:])
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// Write64 stores a 64-bit little-endian word. No alignment is required.
func (m *Memory) Write64(addr uint64, v uint64) error {
	base := addr &^ (PageSize - 1)
	if p := m.lookup(base); p != nil && addr-base <= PageSize-8 {
		binary.LittleEndian.PutUint64(p.data[addr-base:addr-base+8], v)
		return nil
	}
	p, off, err := m.page(addr, true)
	if err != nil {
		return err
	}
	if off <= PageSize-8 {
		binary.LittleEndian.PutUint64(p.data[off:off+8], v)
		return nil
	}
	// Page-straddling store: resolve both pages once and split the copy.
	p2, _, err := m.page(base+PageSize, true)
	if err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	k := copy(p.data[off:], buf[:])
	copy(p2.data[:8-k], buf[k:])
	return nil
}

// ReadBytes copies n bytes starting at addr, chunked per page.
func (m *Memory) ReadBytes(addr, n uint64) ([]byte, error) {
	out := make([]byte, n)
	for done := uint64(0); done < n; {
		p, off, err := m.page(addr+done, false)
		if err != nil {
			return nil, err
		}
		done += uint64(copy(out[done:], p.data[off:]))
	}
	return out, nil
}

// WriteBytes copies data into guest memory at addr, chunked per page.
func (m *Memory) WriteBytes(addr uint64, data []byte) error {
	for done := 0; done < len(data); {
		p, off, err := m.page(addr+uint64(done), true)
		if err != nil {
			return err
		}
		done += copy(p.data[off:], data[done:])
	}
	return nil
}
