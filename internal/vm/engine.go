package vm

import (
	"errors"
	"math"
	"sync/atomic"

	"chaser/internal/isa"
	"chaser/internal/taint"
	"chaser/internal/tcg"
)

// abortBox is the cross-goroutine kill switch used by the MPI world
// supervisor.
type abortBox struct {
	p atomic.Pointer[Termination]
}

// Abort requests asynchronous termination of the machine (e.g. mpirun
// killing the remaining ranks after a peer crash). The machine observes the
// request at the next translation-block boundary or blocking syscall.
func (m *Machine) Abort(t Termination) {
	m.abort.p.CompareAndSwap(nil, &t)
}

// Aborted returns the pending asynchronous termination, if any.
func (m *Machine) Aborted() *Termination { return m.abort.p.Load() }

// chainNode wraps a translation block with this machine's chaining state.
// TBs may be shared read-only between machines (the campaign base cache), so
// QEMU-style block chaining — a mutation — lives here, never on the TB.
type chainNode struct {
	tb  *tcg.TB
	out [2]chainEdge // up to two cached successor edges, engine-managed
	// lastHit is the slot most recently looked up or written; eviction takes
	// the other slot (pseudo-LRU), so an alternating pattern over three
	// successors keeps the recurring edge cached instead of cycling it out.
	lastHit int
	// execs counts complete fast-loop executions of tb whose per-opcode
	// statistics have not yet been folded into Counters.PerOp; flushPerOp
	// applies tb's histogram execs-fold and zeroes it.
	execs uint64
}

// chainEdge is one cached control-flow edge: continuation pc -> successor.
type chainEdge struct {
	pc uint64
	to *chainNode
}

// chainTable is the per-machine chain state: one node per executed TB,
// valid for a single translation-overlay generation.
type chainTable struct {
	gen   uint64
	nodes map[*tcg.TB]*chainNode
}

// Run executes the guest until it terminates and returns its final status.
// Hot control-flow edges are block-chained: once a successor block is
// resolved it is cached on the predecessor's chain node and followed
// directly, subject to a generation check so overlay flushes invalidate
// every chain.
func (m *Machine) Run() Termination {
	for m.term == nil {
		m.step(true)
	}
	m.flushObs()
	return *m.term
}

// step performs one engine iteration: observe pending asynchronous aborts,
// resolve the next block through the chain table (or the translator on a
// chain miss), execute it, and cache the taken edge. chain permits the fast
// loop to follow chained edges without unwinding (Run); Step passes false to
// keep its one-block-per-call contract.
func (m *Machine) step(chain bool) {
	if t := m.abort.p.Load(); t != nil {
		m.term = t
		return
	}
	// The generation must be re-read every iteration: helpers can flush
	// the translation overlay mid-run (Chaser arms hooks that way), which
	// must sever every chained edge immediately.
	gen := m.Trans.Gen()
	if m.chains.nodes == nil || m.chains.gen != gen {
		// The outgoing table's nodes carry unflushed per-opcode credit;
		// fold it in before they become unreachable.
		m.flushPerOp()
		m.chains = chainTable{gen: gen, nodes: make(map[*tcg.TB]*chainNode)}
		m.prevTB = nil
	}
	var node *chainNode
	if prev := m.prevTB; prev != nil {
		for i := range prev.out {
			if e := prev.out[i]; e.to != nil && e.pc == m.pc {
				node = e.to
				prev.lastHit = i
				m.counters.ChainedTBs++
				break
			}
		}
	}
	if node == nil {
		tb, err := m.Trans.Block(m.pc)
		if err != nil {
			// Instruction-fetch fault: wild jump outside the code
			// segment (SIGSEGV) or into an undecodable word (SIGILL).
			sig := SIGSEGV
			var bad *isa.BadOpcodeError
			if errors.As(err, &bad) && bad.Opcode != 0 {
				sig = SIGILL
			}
			m.kill(sig, err.Error())
			return
		}
		node = m.chains.nodes[tb]
		if node == nil {
			node = &chainNode{tb: tb}
			m.chains.nodes[tb] = node
		}
		if prev := m.prevTB; prev != nil {
			// Reuse a free slot or one already holding this pc — inserting
			// into the other slot would duplicate the edge and evict a live
			// distinct successor. Only when both slots hold live distinct
			// edges does one get evicted, and then the least-recently-used
			// one, not round-robin.
			slot := -1
			for i := range prev.out {
				if prev.out[i].to == nil || prev.out[i].pc == m.pc {
					slot = i
					break
				}
			}
			if slot < 0 {
				slot = 1 - prev.lastHit
			}
			prev.out[slot] = chainEdge{pc: m.pc, to: node}
			prev.lastHit = slot
		}
	}
	m.counters.TBsExecuted++
	m.prevTB = m.execTB(node, chain)
}

// Step executes exactly one translation block (for tests and debuggers). It
// has the semantics of a single Run iteration: pending aborts are honored,
// fetch faults are classified (SIGSEGV vs SIGILL), and the budget and
// chaining bookkeeping are identical — interleaving Step and Run is safe.
func (m *Machine) Step() *Termination {
	if m.term == nil {
		m.step(false)
	}
	return m.term
}

func (m *Machine) kill(sig Signal, msg string) {
	m.term = &Termination{Reason: ReasonSignal, Signal: sig, PC: m.pc, Msg: msg}
}

// execTB dispatches a block to one of two specialized interpreter loops:
// the taint-free fast loop when taint is disabled or the shadow is provably
// empty (the campaign golden run and the pre-injection prefix of every
// injected run), or the full loop otherwise. Both loops are observationally
// identical — terminations, counters, traces, and taint summaries match
// bitwise; the fast loop merely skips work that is provably a no-op.
func (m *Machine) execTB(node *chainNode, chain bool) *chainNode {
	if !m.noFastPath && (!m.TaintEnabled || !m.Shadow.Live()) {
		m.counters.FastPathTBs++
		return m.execTBFast(node, chain)
	}
	m.execTBFull(node.tb, 0)
	return node
}

// retireFused performs the First-boundary bookkeeping for the second guest
// instruction covered by a cross-instruction fused op (KCmpBr), replicating
// exactly what the unfused schedule did between the pair. It returns false
// when the instruction budget terminates the run.
func (m *Machine) retireFused(op *tcg.Op) bool {
	m.counters.Instructions++
	m.counters.PerOp[op.GuestOp2]++
	if m.execTrace != nil {
		m.execTrace.record(op.GuestPC2, op.GuestOp2, m.counters.Instructions)
	}
	if m.counters.Instructions > m.maxInstr {
		m.pc = op.GuestPC2
		m.term = &Termination{Reason: ReasonBudget, PC: m.pc}
		return false
	}
	if m.TaintEnabled && m.Hooks.Sample != nil && m.counters.Instructions%m.sampleIv == 0 {
		m.Hooks.Sample(m.counters.Instructions, m.Shadow.TaintedBytes())
	}
	return true
}

//nolint:gocyclo // the micro-op interpreter is one hot switch by design.
func (m *Machine) execTBFull(tb *tcg.TB, start int) {
	taintOn := m.TaintEnabled
	sh := m.Shadow
	regs := &m.regs

	for i := start; i < len(tb.Ops); i++ {
		op := &tb.Ops[i]
		if op.First {
			m.counters.Instructions++
			m.counters.PerOp[op.GuestOp]++
			if m.execTrace != nil {
				m.execTrace.record(op.GuestPC, op.GuestOp, m.counters.Instructions)
			}
			if m.counters.Instructions > m.maxInstr {
				m.pc = op.GuestPC
				m.term = &Termination{Reason: ReasonBudget, PC: m.pc}
				return
			}
			if taintOn && m.Hooks.Sample != nil && m.counters.Instructions%m.sampleIv == 0 {
				m.Hooks.Sample(m.counters.Instructions, sh.TaintedBytes())
			}
		}

		switch op.Kind {
		case tcg.KNop:
			// nothing

		case tcg.KMovI:
			regs[op.A0] = uint64(op.Imm)
			if taintOn {
				sh.SetRegMask(op.A0, 0)
			}

		case tcg.KMov:
			regs[op.A0] = regs[op.A1]
			if taintOn {
				sh.SetRegMask(op.A0, sh.RegMask(op.A1))
			}

		case tcg.KAdd:
			regs[op.A0] = regs[op.A1] + regs[op.A2]
			if taintOn {
				m.binTaint(op)
			}
		case tcg.KSub:
			regs[op.A0] = regs[op.A1] - regs[op.A2]
			if taintOn {
				m.binTaint(op)
			}
		case tcg.KMul:
			regs[op.A0] = regs[op.A1] * regs[op.A2]
			if taintOn {
				m.binTaint(op)
			}
		case tcg.KDiv:
			a, b := int64(regs[op.A1]), int64(regs[op.A2])
			if b == 0 {
				m.pc = op.GuestPC
				m.kill(SIGFPE, "integer divide by zero")
				return
			}
			if a == math.MinInt64 && b == -1 {
				regs[op.A0] = uint64(a) // wrap like two's-complement hardware
			} else {
				regs[op.A0] = uint64(a / b)
			}
			if taintOn {
				m.binTaint(op)
			}
		case tcg.KMod:
			a, b := int64(regs[op.A1]), int64(regs[op.A2])
			if b == 0 {
				m.pc = op.GuestPC
				m.kill(SIGFPE, "integer modulo by zero")
				return
			}
			if a == math.MinInt64 && b == -1 {
				regs[op.A0] = 0
			} else {
				regs[op.A0] = uint64(a % b)
			}
			if taintOn {
				m.binTaint(op)
			}
		case tcg.KAddI:
			regs[op.A0] = regs[op.A1] + uint64(op.Imm)
			if taintOn {
				sh.SetRegMask(op.A0, taint.ImmBinaryMask(tcg.KAddI, sh.RegMask(op.A1), op.Imm))
			}
		case tcg.KMulI:
			regs[op.A0] = regs[op.A1] * uint64(op.Imm)
			if taintOn {
				sh.SetRegMask(op.A0, taint.ImmBinaryMask(tcg.KMulI, sh.RegMask(op.A1), op.Imm))
			}
		case tcg.KAnd:
			regs[op.A0] = regs[op.A1] & regs[op.A2]
			if taintOn {
				m.binTaint(op)
			}
		case tcg.KOr:
			regs[op.A0] = regs[op.A1] | regs[op.A2]
			if taintOn {
				m.binTaint(op)
			}
		case tcg.KXor:
			regs[op.A0] = regs[op.A1] ^ regs[op.A2]
			if taintOn {
				m.binTaint(op)
			}
		case tcg.KShl:
			sa := regs[op.A2]
			if sa >= 64 {
				regs[op.A0] = 0
			} else {
				regs[op.A0] = regs[op.A1] << sa
			}
			if taintOn {
				sh.SetRegMask(op.A0, taint.BinaryMask(tcg.KShl, sh.RegMask(op.A1), sh.RegMask(op.A2), sa))
			}
		case tcg.KShr:
			sa := regs[op.A2]
			if sa >= 64 {
				regs[op.A0] = 0
			} else {
				regs[op.A0] = regs[op.A1] >> sa
			}
			if taintOn {
				sh.SetRegMask(op.A0, taint.BinaryMask(tcg.KShr, sh.RegMask(op.A1), sh.RegMask(op.A2), sa))
			}
		case tcg.KNot:
			regs[op.A0] = ^regs[op.A1]
			if taintOn {
				sh.SetRegMask(op.A0, taint.UnaryMask(tcg.KNot, sh.RegMask(op.A1)))
			}

		case tcg.KFAdd:
			regs[op.A0] = math.Float64bits(math.Float64frombits(regs[op.A1]) + math.Float64frombits(regs[op.A2]))
			if taintOn {
				m.binTaint(op)
			}
		case tcg.KFSub:
			regs[op.A0] = math.Float64bits(math.Float64frombits(regs[op.A1]) - math.Float64frombits(regs[op.A2]))
			if taintOn {
				m.binTaint(op)
			}
		case tcg.KFMul:
			regs[op.A0] = math.Float64bits(math.Float64frombits(regs[op.A1]) * math.Float64frombits(regs[op.A2]))
			if taintOn {
				m.binTaint(op)
			}
		case tcg.KFDiv:
			regs[op.A0] = math.Float64bits(math.Float64frombits(regs[op.A1]) / math.Float64frombits(regs[op.A2]))
			if taintOn {
				m.binTaint(op)
			}
		case tcg.KFNeg:
			regs[op.A0] = math.Float64bits(-math.Float64frombits(regs[op.A1]))
			if taintOn {
				sh.SetRegMask(op.A0, taint.UnaryMask(tcg.KFNeg, sh.RegMask(op.A1)))
			}
		case tcg.KCvtIF:
			regs[op.A0] = math.Float64bits(float64(int64(regs[op.A1])))
			if taintOn {
				sh.SetRegMask(op.A0, taint.UnaryMask(tcg.KCvtIF, sh.RegMask(op.A1)))
			}
		case tcg.KCvtFI:
			f := math.Float64frombits(regs[op.A1])
			switch {
			case math.IsNaN(f):
				regs[op.A0] = 0
			case f >= math.MaxInt64:
				regs[op.A0] = uint64(math.MaxInt64)
			case f <= math.MinInt64:
				regs[op.A0] = 1 << 63 // bit pattern of MinInt64
			default:
				regs[op.A0] = uint64(int64(f))
			}
			if taintOn {
				sh.SetRegMask(op.A0, taint.UnaryMask(tcg.KCvtFI, sh.RegMask(op.A1)))
			}

		case tcg.KLd64:
			addr := regs[op.A1]
			v, err := m.Mem.Read64(addr)
			if err != nil {
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return
			}
			regs[op.A0] = v
			if taintOn {
				mask := sh.MemMask64(addr)
				sh.SetRegMask(op.A0, mask)
				if mask != 0 {
					m.memTaintEvent(op, addr, v, mask, 8, false)
				}
			}
		case tcg.KSt64:
			addr := regs[op.A1]
			v := regs[op.A2]
			if err := m.Mem.Write64(addr, v); err != nil {
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return
			}
			if taintOn {
				mask := sh.RegMask(op.A2)
				sh.SetMemMask64(addr, mask)
				if mask != 0 {
					m.memTaintEvent(op, addr, v, mask, 8, true)
				}
			}
		case tcg.KLd8:
			addr := regs[op.A1]
			v, err := m.Mem.Read8(addr)
			if err != nil {
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return
			}
			regs[op.A0] = uint64(v)
			if taintOn {
				mask := uint64(sh.MemMask8(addr))
				sh.SetRegMask(op.A0, mask)
				if mask != 0 {
					m.memTaintEvent(op, addr, uint64(v), mask, 1, false)
				}
			}
		case tcg.KSt8:
			addr := regs[op.A1]
			v := uint8(regs[op.A2])
			if err := m.Mem.Write8(addr, v); err != nil {
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return
			}
			if taintOn {
				mask := uint8(sh.RegMask(op.A2))
				sh.SetMemMask8(addr, mask)
				if mask != 0 {
					m.memTaintEvent(op, addr, uint64(v), uint64(mask), 1, true)
				}
			}

		case tcg.KLdD:
			// Fused KAddI+KLd64: the address temporary (A2) is still written
			// — value and taint — so machine state matches the unfused pair.
			addr := regs[op.A1] + uint64(op.Imm)
			if taintOn {
				sh.SetRegMask(op.A2, taint.ImmBinaryMask(tcg.KLdD, sh.RegMask(op.A1), op.Imm))
			}
			regs[op.A2] = addr
			v, err := m.Mem.Read64(addr)
			if err != nil {
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return
			}
			regs[op.A0] = v
			if taintOn {
				mask := sh.MemMask64(addr)
				sh.SetRegMask(op.A0, mask)
				if mask != 0 {
					m.memTaintEvent(op, addr, v, mask, 8, false)
				}
			}
		case tcg.KStD:
			// Fused KAddI+KSt64. The temp (A0) must be written before the
			// source (A2) is read: for push they are both SP and the unfused
			// sequence stores the decremented value.
			addr := regs[op.A1] + uint64(op.Imm)
			if taintOn {
				sh.SetRegMask(op.A0, taint.ImmBinaryMask(tcg.KStD, sh.RegMask(op.A1), op.Imm))
			}
			regs[op.A0] = addr
			v := regs[op.A2]
			if err := m.Mem.Write64(addr, v); err != nil {
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return
			}
			if taintOn {
				mask := sh.RegMask(op.A2)
				sh.SetMemMask64(addr, mask)
				if mask != 0 {
					m.memTaintEvent(op, addr, v, mask, 8, true)
				}
			}

		case tcg.KSetc:
			a, b := int64(regs[op.A1]), int64(regs[op.A2])
			switch {
			case a < b:
				m.flags = -1
			case a > b:
				m.flags = 1
			default:
				m.flags = 0
			}
			if taintOn {
				sh.SetRegMask(tcg.FlagsReg, taint.CompareMask(sh.RegMask(op.A1), sh.RegMask(op.A2)))
			}
		case tcg.KSetcI:
			a := int64(regs[op.A1])
			switch {
			case a < op.Imm:
				m.flags = -1
			case a > op.Imm:
				m.flags = 1
			default:
				m.flags = 0
			}
			if taintOn {
				sh.SetRegMask(tcg.FlagsReg, taint.CompareMask(sh.RegMask(op.A1), 0))
			}
		case tcg.KFSetc:
			a := math.Float64frombits(regs[op.A1])
			b := math.Float64frombits(regs[op.A2])
			switch {
			case math.IsNaN(a) || math.IsNaN(b):
				m.flags = 1
			case a < b:
				m.flags = -1
			case a > b:
				m.flags = 1
			default:
				m.flags = 0
			}
			if taintOn {
				sh.SetRegMask(tcg.FlagsReg, taint.CompareMask(sh.RegMask(op.A1), sh.RegMask(op.A2)))
			}

		case tcg.KBr:
			m.pc = uint64(op.Imm)
			return
		case tcg.KBrCond:
			if condHolds(op.Cond, m.flags) {
				m.pc = uint64(op.Imm)
			} else {
				m.pc = uint64(op.Imm2)
			}
			return
		case tcg.KCmpBr:
			// Fused KSetc+KBrCond across two guest instructions: compare,
			// retire the branch instruction, then branch — the same schedule
			// the unfused pair executed.
			a, b := int64(regs[op.A1]), int64(regs[op.A2])
			switch {
			case a < b:
				m.flags = -1
			case a > b:
				m.flags = 1
			default:
				m.flags = 0
			}
			if taintOn {
				sh.SetRegMask(tcg.FlagsReg, taint.CompareMask(sh.RegMask(op.A1), sh.RegMask(op.A2)))
			}
			if !m.retireFused(op) {
				return
			}
			if condHolds(op.Cond, m.flags) {
				m.pc = uint64(op.Imm)
			} else {
				m.pc = uint64(op.Imm2)
			}
			return
		case tcg.KCmpBrI:
			// Immediate form: Imm is the compare operand, Imm2 the taken
			// target; the fall-through is the instruction after the branch.
			a := int64(regs[op.A1])
			switch {
			case a < op.Imm:
				m.flags = -1
			case a > op.Imm:
				m.flags = 1
			default:
				m.flags = 0
			}
			if taintOn {
				sh.SetRegMask(tcg.FlagsReg, taint.CompareMask(sh.RegMask(op.A1), 0))
			}
			if !m.retireFused(op) {
				return
			}
			if condHolds(op.Cond, m.flags) {
				m.pc = uint64(op.Imm2)
			} else {
				m.pc = op.GuestPC2 + isa.InstrSize
			}
			return
		case tcg.KCall:
			sp := regs[tcg.SPReg] - 8
			if err := m.Mem.Write64(sp, uint64(op.Imm2)); err != nil {
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return
			}
			regs[tcg.SPReg] = sp
			if taintOn {
				sh.SetMemMask64(sp, 0)
			}
			m.pc = uint64(op.Imm)
			return
		case tcg.KRet:
			sp := regs[tcg.SPReg]
			ret, err := m.Mem.Read64(sp)
			if err != nil {
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return
			}
			regs[tcg.SPReg] = sp + 8
			m.pc = ret
			return

		case tcg.KSyscall:
			m.pc = uint64(op.Imm2)
			m.doSyscall(isa.Sys(op.Imm), op.GuestPC)
			if m.term != nil {
				return
			}
			return // KSyscall always ends the TB

		case tcg.KHlt:
			m.pc = op.GuestPC
			m.term = &Termination{Reason: ReasonExited, Code: int64(regs[tcg.GPR0]), PC: m.pc}
			return

		case tcg.KHelper:
			if op.Helper >= 0 && op.Helper < len(m.helpers) {
				m.helpers[op.Helper](m, op)
				if m.term != nil {
					return
				}
			}

		default:
			m.pc = op.GuestPC
			m.kill(SIGILL, "unimplemented micro-op "+op.Kind.String())
			return
		}
	}
	m.pc = tb.NextPC
}

func (m *Machine) binTaint(op *tcg.Op) {
	sh := m.Shadow
	sh.SetRegMask(op.A0, taint.BinaryMask(op.Kind, sh.RegMask(op.A1), sh.RegMask(op.A2), m.regs[op.A2]))
}

func (m *Machine) memTaintEvent(op *tcg.Op, addr, value, mask uint64, size int, write bool) {
	if write {
		m.counters.TaintedMemWrites++
	} else {
		m.counters.TaintedMemReads++
	}
	cb := m.Hooks.TaintedMemRead
	if write {
		cb = m.Hooks.TaintedMemWrite
	}
	if cb == nil {
		return
	}
	paddr, err := m.Mem.Translate(addr)
	if err != nil {
		paddr = 0
	}
	cb(MemTaintEvent{
		EIP:      op.GuestPC,
		VAddr:    addr,
		PAddr:    paddr,
		Value:    value,
		Mask:     mask,
		Rank:     m.Rank,
		Size:     size,
		InstrNum: m.counters.Instructions,
		Region:   m.Mem.RegionName(addr),
	})
}

func condHolds(cond isa.Op, flags int64) bool {
	switch cond {
	case isa.OpJe:
		return flags == 0
	case isa.OpJne:
		return flags != 0
	case isa.OpJl:
		return flags < 0
	case isa.OpJle:
		return flags <= 0
	case isa.OpJg:
		return flags > 0
	case isa.OpJge:
		return flags >= 0
	}
	return false
}
