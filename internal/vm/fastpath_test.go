package vm

import (
	"reflect"
	"testing"

	"chaser/internal/asm"
	"chaser/internal/isa"
	"chaser/internal/obs"
	"chaser/internal/tcg"
)

// chainStressSrc exercises a chain node with three distinct successors in
// the recurring pattern A,B,A,C: f returns alternately to the straight-line
// site and to one of two parity-selected sites. A two-slot cache with
// round-robin eviction thrashes on this pattern (~25% steady-state hit rate
// on the ret node); pseudo-LRU keeps the recurring edge A cached (~50%).
const chainStressSrc = `
.entry main
f:
    addi r2, r2, 1
    ret
main:
    movi r1, 100
    movi r4, 1
loop:
    call f
    and r3, r1, r4
    cmpi r3, 0
    je even
    call f
    jmp cont
even:
    call f
cont:
    addi r1, r1, -1
    cmpi r1, 0
    jg loop
    syscall exit
`

func TestChainCacheKeepsRecurringEdge(t *testing.T) {
	m, term := run(t, chainStressSrc)
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if got := m.GPR(isa.R2); got != 200 {
		t.Fatalf("f called %d times, want 200", got)
	}
	c := m.Counters()
	// The f-ret node sees successors A,B,A,C per two iterations (A is the
	// post-call straight-line block, B/C the parity sites). Pseudo-LRU keeps
	// A resident: 99 of its 100 accesses chain (540 total here), while the
	// old round-robin eviction cycled A out every period, hitting only ~50
	// times from this node (~490 total). The bar sits between the two so the
	// round-robin scheme fails it.
	t.Logf("ChainedTBs = %d of %d TBs", c.ChainedTBs, c.TBsExecuted)
	if c.ChainedTBs < 515 {
		t.Errorf("ChainedTBs = %d, want >= 515 (pseudo-LRU keeps the recurring edge)", c.ChainedTBs)
	}
	if c.ChainedTBs >= c.TBsExecuted {
		t.Errorf("ChainedTBs = %d >= TBsExecuted %d", c.ChainedTBs, c.TBsExecuted)
	}
}

// TestChainCacheDuplicateEdge: re-resolving a pc already cached in a slot
// must reuse that slot, never insert a second edge for the same pc.
func TestChainCacheDuplicateEdge(t *testing.T) {
	m, term := run(t, `
main:
    movi r1, 20
loop:
    addi r1, r1, -1
    cmpi r1, 0
    jg loop
    syscall exit
`)
	if term.Reason != ReasonExited {
		t.Fatalf("term = %v", term)
	}
	// The loop TB's taken edge targets itself; after the first resolution
	// every iteration must chain.
	c := m.Counters()
	if c.ChainedTBs < c.TBsExecuted-4 {
		t.Errorf("ChainedTBs = %d of %d, self-loop should chain every iteration",
			c.ChainedTBs, c.TBsExecuted)
	}
	if m.prevTB != nil {
		for i := range m.prevTB.out {
			for j := i + 1; j < len(m.prevTB.out); j++ {
				ei, ej := m.prevTB.out[i], m.prevTB.out[j]
				if ei.to != nil && ej.to != nil && ei.pc == ej.pc {
					t.Errorf("duplicate chain edges for pc %#x", ei.pc)
				}
			}
		}
	}
}

const fastCountSrc = `
main:
    movi r1, 50
loop:
    addi r1, r1, -1
    cmpi r1, 0
    jg loop
    syscall exit
`

// TestFastPathSelection pins down exactly when the specialized loop runs:
// always while no taint exists, never once the shadow is live at TB entry,
// and never under the NoFastPath ablation switch.
func TestFastPathSelection(t *testing.T) {
	t.Run("taint off", func(t *testing.T) {
		m, term := run(t, fastCountSrc)
		if term.Reason != ReasonExited {
			t.Fatalf("term = %v", term)
		}
		c := m.Counters()
		if c.FastPathTBs == 0 || c.FastPathTBs != c.TBsExecuted {
			t.Errorf("FastPathTBs = %d of %d, want all", c.FastPathTBs, c.TBsExecuted)
		}
	})
	t.Run("taint on, empty shadow", func(t *testing.T) {
		p, err := asm.Assemble("test", fastCountSrc)
		if err != nil {
			t.Fatal(err)
		}
		m := New(p, Config{})
		m.TaintEnabled = true
		if term := m.Run(); term.Reason != ReasonExited {
			t.Fatalf("term = %v", term)
		}
		c := m.Counters()
		if c.FastPathTBs != c.TBsExecuted {
			t.Errorf("FastPathTBs = %d of %d, want all (elastic taint: empty shadow costs nothing)",
				c.FastPathTBs, c.TBsExecuted)
		}
	})
	t.Run("live shadow", func(t *testing.T) {
		p, err := asm.Assemble("test", fastCountSrc)
		if err != nil {
			t.Fatal(err)
		}
		m := New(p, Config{})
		m.TaintEnabled = true
		// Seed a register the program never overwrites so the shadow stays
		// live for the whole run.
		m.Shadow.SetRegMask(tcg.GPR(isa.R9), 1)
		if term := m.Run(); term.Reason != ReasonExited {
			t.Fatalf("term = %v", term)
		}
		if c := m.Counters(); c.FastPathTBs != 0 {
			t.Errorf("FastPathTBs = %d with live shadow, want 0", c.FastPathTBs)
		}
	})
	t.Run("NoFastPath", func(t *testing.T) {
		m, term := runCfg(t, fastCountSrc, Config{NoFastPath: true})
		if term.Reason != ReasonExited {
			t.Fatalf("term = %v", term)
		}
		if c := m.Counters(); c.FastPathTBs != 0 {
			t.Errorf("FastPathTBs = %d under NoFastPath, want 0", c.FastPathTBs)
		}
	})
}

// diffSrc exercises everything both loops implement: fused compare+branch,
// fused base+displacement loads/stores, shifts, and a helper site inside a
// multi-instruction block so taint appears mid-TB on the fast loop.
const diffSrc = `
main:
    movi r1, 64
    syscall alloc
    movi r2, 400
    movi r5, 0
    movi r9, 3
loop:
    add r5, r5, r2
    st [r0+8], r5
    ld r6, [r0+8]
    shl r7, r6, r9
    stb [r0+3], r7
    ldb r8, [r0+3]
    addi r2, r2, -1
    cmpi r2, 0
    jg loop
    hlt
`

type diffState struct {
	Regs [tcg.NumMRegs]uint64 // live register window only

	Flags    int64
	PC       uint64
	Term     Termination
	Counters Counters
	RegMasks [tcg.NumMRegs]uint64
	Tainted  int64
	High     int64
	Addrs    []uint64
	Masks    []uint8
	Heap     []byte
	Console  string
	Output   []byte
	Reads    []MemTaintEvent
	Writes   []MemTaintEvent
	Samples  []int64
}

// runDiff executes diffSrc with taint enabled and a translation hook that
// seeds taint on the 150th execution of the accumulate instruction — mid-run
// and mid-TB, the shape of Chaser's fault_injector firing.
func runDiff(t *testing.T, noFast bool) diffState {
	t.Helper()
	p, err := asm.Assemble("test", diffSrc)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(p, Config{NoFastPath: noFast, SampleInterval: 256})
	m.TaintEnabled = true
	var st diffState
	m.Hooks.TaintedMemRead = func(ev MemTaintEvent) { st.Reads = append(st.Reads, ev) }
	m.Hooks.TaintedMemWrite = func(ev MemTaintEvent) { st.Writes = append(st.Writes, ev) }
	m.Hooks.Sample = func(instrs uint64, tainted int64) { st.Samples = append(st.Samples, tainted) }
	fires := 0
	id := m.RegisterHelper(func(mm *Machine, op *tcg.Op) {
		fires++
		if fires == 150 {
			mm.Shadow.SetRegMask(tcg.GPR(isa.R2), 1<<2)
		}
	})
	m.Trans.AddHook(func(ins isa.Instr, pc uint64) []tcg.Op {
		if ins.Op == isa.OpAdd {
			return []tcg.Op{{Kind: tcg.KHelper, Helper: id}}
		}
		return nil
	})
	st.Term = m.Run()
	copy(st.Regs[:], m.regs[:tcg.NumMRegs])
	st.Flags = m.flags
	st.PC = m.pc
	st.Counters = m.Counters()
	for r := tcg.MReg(0); r < tcg.NumMRegs; r++ {
		st.RegMasks[r] = m.Shadow.RegMask(r)
	}
	st.Tainted = m.Shadow.TaintedBytes()
	st.High = m.Shadow.HighWater()
	st.Addrs = m.Shadow.TaintedAddrs(0)
	for _, a := range st.Addrs {
		st.Masks = append(st.Masks, m.Shadow.MemMask8(a))
	}
	heap, err := m.Mem.ReadBytes(isa.HeapBase, 64)
	if err != nil {
		t.Fatalf("heap read: %v", err)
	}
	st.Heap = heap
	st.Console = m.Console()
	st.Output = m.Output()
	return st
}

// TestFastFullDifferentialMidTBInjection is the dual-loop identity proof at
// the unit level: a run that starts on the fast loop, gets taint seeded by a
// helper in the middle of a block, and hands off to the full loop must be
// bitwise indistinguishable — registers, flags, memory, shadow state, taint
// events, samples, and counters — from the same run forced through the full
// loop for its entire life.
func TestFastFullDifferentialMidTBInjection(t *testing.T) {
	fast := runDiff(t, false)
	full := runDiff(t, true)

	if fast.Counters.FastPathTBs == 0 {
		t.Fatal("fast run never took the fast path; differential is vacuous")
	}
	if fast.Counters.FastPathTBs >= fast.Counters.TBsExecuted {
		t.Fatal("fast run never handed off to the full loop; differential is vacuous")
	}
	if full.Counters.FastPathTBs != 0 {
		t.Fatalf("NoFastPath run took the fast path %d times", full.Counters.FastPathTBs)
	}
	// The selector counter is the single permitted divergence.
	fast.Counters.FastPathTBs = 0
	full.Counters.FastPathTBs = 0

	if !reflect.DeepEqual(fast, full) {
		t.Errorf("fast loop and full loop diverged:\nfast: %+v\nfull: %+v", fast, full)
	}
	if fast.Tainted == 0 {
		t.Error("injection left no tainted memory; differential under-exercised")
	}
	if len(fast.Reads) == 0 || len(fast.Writes) == 0 {
		t.Error("no tainted memory events; differential under-exercised")
	}
}

// TestEventSinkFastLoopNoAlloc extends the fast-loop allocation guard to the
// observability event sink: with a disabled (nil) sink — and even with an
// enabled one, since the vm emits only at run edges, never per block — the
// fast loop must not allocate. This pins the "disabled is free" contract of
// the streaming sink at the layer where it matters most.
func TestEventSinkFastLoopNoAlloc(t *testing.T) {
	src := `
main:
    movi r1, 7
    add r2, r1, r1
    sub r3, r2, r1
    jmp main
`
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"disabled sink", Config{}},
		{"enabled sink", Config{Events: obs.NewSink(64)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := asm.Assemble("test", src)
			if err != nil {
				t.Fatal(err)
			}
			m := New(p, tc.cfg)
			tb, err := m.Trans.Block(m.pc)
			if err != nil {
				t.Fatal(err)
			}
			node := &chainNode{tb: tb}
			m.execTB(node, false) // warm
			allocs := testing.AllocsPerRun(200, func() {
				m.execTB(node, false)
			})
			if allocs != 0 {
				t.Errorf("fast loop allocates %.1f per block with %s, want 0", allocs, tc.name)
			}
			if tc.cfg.Events != nil && tc.cfg.Events.Len() != 0 {
				t.Errorf("fast loop emitted %d events; only run edges may emit", tc.cfg.Events.Len())
			}
		})
	}
}

// TestFastPathNoAlloc guards the fast loop's zero-allocation property: once a
// block is translated and chained, executing it must not allocate.
func TestFastPathNoAlloc(t *testing.T) {
	p, err := asm.Assemble("test", `
main:
    movi r1, 7
    movi r6, 2
    add r2, r1, r1
    shl r3, r2, r6
    sub r4, r3, r1
    xor r5, r4, r2
    jmp main
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{})
	tb, err := m.Trans.Block(m.pc)
	if err != nil {
		t.Fatal(err)
	}
	node := &chainNode{tb: tb}
	m.execTB(node, false) // warm
	allocs := testing.AllocsPerRun(200, func() {
		m.execTB(node, false)
	})
	if allocs != 0 {
		t.Errorf("fast path allocates %.1f per block, want 0", allocs)
	}
	if m.term != nil {
		t.Fatalf("unexpected termination: %v", m.term)
	}
	// The dispatcher itself counts fast-path blocks, so every direct execTB
	// call above must have registered.
	if c := m.counters; c.FastPathTBs < 200 {
		t.Errorf("FastPathTBs = %d, want every direct execTB counted", c.FastPathTBs)
	}
}
