package vm

import (
	"fmt"

	"chaser/internal/isa"
	"chaser/internal/taint"
	"chaser/internal/tcg"
)

// Fork-point run multiplexing: a paused (or exited) machine is captured into
// an immutable Snapshot, and any number of forked machines are constructed
// from it. Memory is shared copy-on-write (see Memory.Snapshot); everything
// else — registers, flags, counters, console/output, shadow taint — is
// copied, so a forked continuation is bitwise indistinguishable from a
// machine that executed the prefix itself.

// PauseAt suspends the machine at the given guest pc with ReasonPaused. It
// is called from an instrumentation helper running in front of the target
// instruction: the instruction is not yet retired, so resuming from pc
// re-executes it exactly once and no counter compensation is needed.
func (m *Machine) PauseAt(pc uint64) {
	m.pc = pc
	m.term = &Termination{Reason: ReasonPaused, PC: pc, Msg: "fork-point pause"}
}

// Snapshot is an immutable capture of one machine, shareable across any
// number of forks.
type Snapshot struct {
	mem      *MemImage
	regs     [256]uint64
	pc       uint64
	flags    int64
	heapBrk  uint64
	console  []byte
	output   []byte
	counters Counters
	shadow   *taint.Shadow
	taintOn  bool
	// term is non-nil when the rank had already exited cleanly before the
	// world paused; forks restore it pre-terminated.
	term *Termination
	// pausedSys is the blocking syscall a pause interrupted (0 = none); the
	// snapshot pc then points at the syscall instruction, which re-executes
	// on resume.
	pausedSys isa.Sys
}

// Snapshot captures the machine. Legal states: still running at a block
// boundary is NOT one — the machine must be paused (ReasonPaused) or have
// terminated cleanly (ReasonExited); anything else errors, because an
// abnormal prefix is not a fork point.
//
// A pause that interrupted a blocking MPI syscall rewinds the pc to the
// syscall instruction and uncounts its retirement (Instructions, PerOp,
// Syscalls): the fork re-executes the syscall against the snapshotted
// message queues and re-retires it, reproducing a from-scratch run's
// counters bitwise.
func (m *Machine) Snapshot() (*Snapshot, error) {
	t := m.term
	if t == nil {
		return nil, fmt.Errorf("vm: snapshot of a running machine")
	}
	if t.Reason != ReasonPaused && t.Reason != ReasonExited {
		return nil, fmt.Errorf("vm: snapshot of abnormally terminated machine (%s)", t)
	}
	s := &Snapshot{
		regs:     m.regs,
		pc:       m.pc,
		flags:    m.flags,
		heapBrk:  m.heapBrk,
		console:  append([]byte(nil), m.console...),
		output:   append([]byte(nil), m.output...),
		counters: m.Counters(), // flushes deferred per-op credit first
		shadow:   m.Shadow.Clone(),
		taintOn:  m.TaintEnabled,
	}
	switch {
	case t.Reason == ReasonExited:
		tt := *t
		s.term = &tt
	case m.pausedIn != 0:
		s.pc = t.PC // the blocked syscall instruction
		s.pausedSys = m.pausedIn
		s.counters.Syscalls--
		s.counters.Instructions--
		if ins, ok := m.Prog.InstrAt(t.PC); ok {
			s.counters.PerOp[ins.Op]--
		}
	default:
		// Block-boundary pause: m.pc is the next block start, already the
		// correct resume point.
		s.pc = m.pc
	}
	// Seal pages last: nothing above mutates memory.
	s.mem = m.Mem.Snapshot()
	m.obsReg.Counter("vm_snapshots_total").Inc()
	return s, nil
}

// PausedIn returns the blocking syscall the pause interrupted, or 0.
func (s *Snapshot) PausedIn() isa.Sys { return s.pausedSys }

// GPR returns a guest general-purpose register value from the snapshot.
func (s *Snapshot) GPR(r isa.Reg) uint64 { return s.regs[tcg.GPR(r)] }

// Counters returns the (compensated) execution statistics at the snapshot
// point.
func (s *Snapshot) Counters() Counters { return s.counters }

// Terminated returns the clean termination of an already-exited rank, nil
// for a paused one.
func (s *Snapshot) Terminated() *Termination { return s.term }

// Bytes returns the resident size of the snapshot: shared page data plus
// the private console/output copies. Forks share the pages, so a cache
// holding N snapshots of the same world does not pay N times the page cost —
// but accounting conservatively per snapshot keeps cache caps simple.
func (s *Snapshot) Bytes() int64 {
	return s.mem.Bytes() + int64(len(s.console)) + int64(len(s.output))
}

// NewFromSnapshot constructs a forked machine resuming from snap. The
// config supplies the same knobs New does (budget, sampling, caches,
// telemetry, MPI plumbing); prog must be the program the snapshot was
// captured from.
func NewFromSnapshot(prog *isa.Program, snap *Snapshot, cfg Config) *Machine {
	m := &Machine{
		Name:         prog.Name,
		PID:          cfg.PID,
		Rank:         cfg.Rank,
		WorldSize:    cfg.WorldSize,
		Prog:         prog,
		Mem:          NewMemoryFromImage(snap.mem),
		Trans:        tcg.NewSharedTranslator(prog, cfg.BaseCache),
		Shadow:       snap.shadow.Clone(),
		TaintEnabled: snap.taintOn,
		regs:         snap.regs,
		pc:           snap.pc,
		flags:        snap.flags,
		heapBrk:      snap.heapBrk,
		maxInstr:     cfg.MaxInstructions,
		sampleIv:     cfg.SampleInterval,
		noFastPath:   cfg.NoFastPath,
		console:      append([]byte(nil), snap.console...),
		output:       append([]byte(nil), snap.output...),
		counters:     snap.counters,
		mpi:          cfg.MPI,
		obsReg:       cfg.Obs,
		events:       cfg.Events,
	}
	m.Trans.AttachObs(cfg.Obs)
	if m.maxInstr == 0 {
		m.maxInstr = DefaultMaxInstructions
	}
	if m.sampleIv == 0 {
		m.sampleIv = DefaultSampleInterval
	}
	if m.WorldSize == 0 {
		m.WorldSize = 1
	}
	if snap.term != nil {
		tt := *snap.term
		m.term = &tt
	}
	return m
}
