package vm

import (
	"encoding/binary"
	"math"

	"chaser/internal/isa"
	"chaser/internal/tcg"
)

// execTBFast is the taint-free specialization of the interpreter loop,
// selected by execTB when taint is disabled or the shadow is provably empty.
// It is execTBFull with every `if taintOn` arm deleted: on an empty shadow
// those arms only ever write zeros over zeros, so skipping them cannot be
// observed — except by the clock. The one taint-aware piece that remains is
// the sampler, which must keep firing (with zero tainted bytes) during the
// pre-injection prefix of a tracing run so sample timelines stay identical.
//
// A KHelper may seed taint mid-block (Chaser's fault_injector corrupting a
// register); the loop re-checks Shadow.Live after every helper and hands the
// rest of the block to the full loop, so the first tainted micro-op already
// propagates.
//
// When chain is true (Run, never Step), the loop follows cached chain edges
// itself — QEMU's goto_tb: a resolved successor block continues executing
// without unwinding to step(), skipping a function call, the dispatcher, and
// the local-state reload per block. Every transition performs exactly the
// bookkeeping step() would (abort poll, generation check, edge scan and LRU
// update, counters), so the executed-block and chained-edge counts are
// bitwise those of the unchained engine; an edge miss returns to step() to
// translate and link, after which the loop picks the edge up again. The
// final node is returned so step() can keep its predecessor bookkeeping.
//
//nolint:gocyclo // the micro-op interpreter is one hot switch by design.
func (m *Machine) execTBFast(node *chainNode, chain bool) *chainNode {
	// Hot state lives in locals: stores through regs alias m for all the
	// compiler knows, so field accesses inside the loop would otherwise
	// reload from memory on every micro-op. The instruction counter is
	// written back at every point control can leave the loop or reach code
	// that reads m.counters (helpers, hooks, syscalls, retireFused).
	regs := &m.regs
	mem := m.Mem
	instrs := m.counters.Instructions
	maxInstr := m.maxInstr
	trace := m.execTrace
	sampleIv := m.sampleIv
	sampleOn := m.TaintEnabled && m.Hooks.Sample != nil

nextBlock:
	tb := node.tb
	ops := tb.Ops
	// Per-opcode statistics are credited at block boundaries, not per
	// instruction: credited marks the index after the last op whose First
	// has been applied to m.counters.PerOp.
	credited := 0

	for i := 0; i < len(ops); i++ {
		op := &ops[i]
		if op.First {
			instrs++
			if trace != nil {
				trace.record(op.GuestPC, op.GuestOp, instrs)
			}
			if instrs > maxInstr {
				m.counters.Instructions = instrs
				m.creditPerOp(tb, credited, i)
				m.pc = op.GuestPC
				m.term = &Termination{Reason: ReasonBudget, PC: m.pc}
				return node
			}
			if sampleOn && instrs%sampleIv == 0 {
				m.counters.Instructions = instrs
				m.Hooks.Sample(instrs, m.Shadow.TaintedBytes())
			}
		}

		switch op.Kind {
		case tcg.KNop:
			// nothing

		case tcg.KMovI:
			regs[op.A0] = uint64(op.Imm)
		case tcg.KMov:
			regs[op.A0] = regs[op.A1]

		case tcg.KAdd:
			regs[op.A0] = regs[op.A1] + regs[op.A2]
		case tcg.KSub:
			regs[op.A0] = regs[op.A1] - regs[op.A2]
		case tcg.KMul:
			regs[op.A0] = regs[op.A1] * regs[op.A2]
		case tcg.KDiv:
			a, b := int64(regs[op.A1]), int64(regs[op.A2])
			if b == 0 {
				m.counters.Instructions = instrs
				m.creditPerOp(tb, credited, i)
				m.pc = op.GuestPC
				m.kill(SIGFPE, "integer divide by zero")
				return node
			}
			if a == math.MinInt64 && b == -1 {
				regs[op.A0] = uint64(a) // wrap like two's-complement hardware
			} else {
				regs[op.A0] = uint64(a / b)
			}
		case tcg.KMod:
			a, b := int64(regs[op.A1]), int64(regs[op.A2])
			if b == 0 {
				m.counters.Instructions = instrs
				m.creditPerOp(tb, credited, i)
				m.pc = op.GuestPC
				m.kill(SIGFPE, "integer modulo by zero")
				return node
			}
			if a == math.MinInt64 && b == -1 {
				regs[op.A0] = 0
			} else {
				regs[op.A0] = uint64(a % b)
			}
		case tcg.KAddI:
			regs[op.A0] = regs[op.A1] + uint64(op.Imm)
		case tcg.KMulI:
			regs[op.A0] = regs[op.A1] * uint64(op.Imm)
		case tcg.KAnd:
			regs[op.A0] = regs[op.A1] & regs[op.A2]
		case tcg.KOr:
			regs[op.A0] = regs[op.A1] | regs[op.A2]
		case tcg.KXor:
			regs[op.A0] = regs[op.A1] ^ regs[op.A2]
		case tcg.KShl:
			if sa := regs[op.A2]; sa >= 64 {
				regs[op.A0] = 0
			} else {
				regs[op.A0] = regs[op.A1] << sa
			}
		case tcg.KShr:
			if sa := regs[op.A2]; sa >= 64 {
				regs[op.A0] = 0
			} else {
				regs[op.A0] = regs[op.A1] >> sa
			}
		case tcg.KNot:
			regs[op.A0] = ^regs[op.A1]

		case tcg.KFAdd:
			regs[op.A0] = math.Float64bits(math.Float64frombits(regs[op.A1]) + math.Float64frombits(regs[op.A2]))
		case tcg.KFSub:
			regs[op.A0] = math.Float64bits(math.Float64frombits(regs[op.A1]) - math.Float64frombits(regs[op.A2]))
		case tcg.KFMul:
			regs[op.A0] = math.Float64bits(math.Float64frombits(regs[op.A1]) * math.Float64frombits(regs[op.A2]))
		case tcg.KFDiv:
			regs[op.A0] = math.Float64bits(math.Float64frombits(regs[op.A1]) / math.Float64frombits(regs[op.A2]))
		case tcg.KFNeg:
			regs[op.A0] = math.Float64bits(-math.Float64frombits(regs[op.A1]))
		case tcg.KCvtIF:
			regs[op.A0] = math.Float64bits(float64(int64(regs[op.A1])))
		case tcg.KCvtFI:
			f := math.Float64frombits(regs[op.A1])
			switch {
			case math.IsNaN(f):
				regs[op.A0] = 0
			case f >= math.MaxInt64:
				regs[op.A0] = uint64(math.MaxInt64)
			case f <= math.MinInt64:
				regs[op.A0] = 1 << 63 // bit pattern of MinInt64
			default:
				regs[op.A0] = uint64(int64(f))
			}

		case tcg.KLd64:
			// The TLB hit path is spelled out here (and in the other memory
			// cases) to keep the hot loop free of function calls; misses and
			// page-straddling accesses fall back to the accessor.
			addr := regs[op.A1]
			if base := addr &^ (PageSize - 1); addr-base <= PageSize-8 {
				if p := mem.lookup(base); p != nil {
					regs[op.A0] = binary.LittleEndian.Uint64(p.data[addr-base : addr-base+8])
					break
				}
			}
			v, err := mem.Read64(addr)
			if err != nil {
				m.counters.Instructions = instrs
				m.creditPerOp(tb, credited, i)
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return node
			}
			regs[op.A0] = v
		case tcg.KSt64:
			addr := regs[op.A1]
			if base := addr &^ (PageSize - 1); addr-base <= PageSize-8 {
				if p := mem.lookup(base); p != nil {
					binary.LittleEndian.PutUint64(p.data[addr-base:addr-base+8], regs[op.A2])
					break
				}
			}
			if err := mem.Write64(addr, regs[op.A2]); err != nil {
				m.counters.Instructions = instrs
				m.creditPerOp(tb, credited, i)
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return node
			}
		case tcg.KLd8:
			addr := regs[op.A1]
			if p := mem.lookup(addr &^ (PageSize - 1)); p != nil {
				regs[op.A0] = uint64(p.data[addr&(PageSize-1)])
				break
			}
			v, err := mem.Read8(addr)
			if err != nil {
				m.counters.Instructions = instrs
				m.creditPerOp(tb, credited, i)
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return node
			}
			regs[op.A0] = uint64(v)
		case tcg.KSt8:
			addr := regs[op.A1]
			if p := mem.lookup(addr &^ (PageSize - 1)); p != nil {
				p.data[addr&(PageSize-1)] = uint8(regs[op.A2])
				break
			}
			if err := mem.Write8(addr, uint8(regs[op.A2])); err != nil {
				m.counters.Instructions = instrs
				m.creditPerOp(tb, credited, i)
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return node
			}

		case tcg.KLdD:
			addr := regs[op.A1] + uint64(op.Imm)
			regs[op.A2] = addr
			if base := addr &^ (PageSize - 1); addr-base <= PageSize-8 {
				if p := mem.lookup(base); p != nil {
					regs[op.A0] = binary.LittleEndian.Uint64(p.data[addr-base : addr-base+8])
					break
				}
			}
			v, err := mem.Read64(addr)
			if err != nil {
				m.counters.Instructions = instrs
				m.creditPerOp(tb, credited, i)
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return node
			}
			regs[op.A0] = v
		case tcg.KStD:
			addr := regs[op.A1] + uint64(op.Imm)
			regs[op.A0] = addr
			if base := addr &^ (PageSize - 1); addr-base <= PageSize-8 {
				if p := mem.lookup(base); p != nil {
					binary.LittleEndian.PutUint64(p.data[addr-base:addr-base+8], regs[op.A2])
					break
				}
			}
			if err := mem.Write64(addr, regs[op.A2]); err != nil {
				m.counters.Instructions = instrs
				m.creditPerOp(tb, credited, i)
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return node
			}

		case tcg.KSetc:
			a, b := int64(regs[op.A1]), int64(regs[op.A2])
			switch {
			case a < b:
				m.flags = -1
			case a > b:
				m.flags = 1
			default:
				m.flags = 0
			}
		case tcg.KSetcI:
			a := int64(regs[op.A1])
			switch {
			case a < op.Imm:
				m.flags = -1
			case a > op.Imm:
				m.flags = 1
			default:
				m.flags = 0
			}
		case tcg.KFSetc:
			a := math.Float64frombits(regs[op.A1])
			b := math.Float64frombits(regs[op.A2])
			switch {
			case math.IsNaN(a) || math.IsNaN(b):
				m.flags = 1
			case a < b:
				m.flags = -1
			case a > b:
				m.flags = 1
			default:
				m.flags = 0
			}

		case tcg.KBr:
			m.counters.Instructions = instrs
			if credited == 0 && i == len(ops)-1 && tb.OpCounts != nil {
				if node.execs == 0 {
					m.dirtyPerOp = append(m.dirtyPerOp, node)
				}
				node.execs++
			} else {
				m.creditPerOp(tb, credited, i)
			}
			m.pc = uint64(op.Imm)
			goto chainTry
		case tcg.KBrCond:
			m.counters.Instructions = instrs
			if credited == 0 && i == len(ops)-1 && tb.OpCounts != nil {
				if node.execs == 0 {
					m.dirtyPerOp = append(m.dirtyPerOp, node)
				}
				node.execs++
			} else {
				m.creditPerOp(tb, credited, i)
			}
			if condHolds(op.Cond, m.flags) {
				m.pc = uint64(op.Imm)
			} else {
				m.pc = uint64(op.Imm2)
			}
			goto chainTry
		case tcg.KCmpBr:
			a, b := int64(regs[op.A1]), int64(regs[op.A2])
			switch {
			case a < b:
				m.flags = -1
			case a > b:
				m.flags = 1
			default:
				m.flags = 0
			}
			m.counters.Instructions = instrs
			if credited == 0 && i == len(ops)-1 && tb.OpCounts != nil {
				if node.execs == 0 {
					m.dirtyPerOp = append(m.dirtyPerOp, node)
				}
				node.execs++
			} else {
				m.creditPerOp(tb, credited, i)
			}
			if !m.retireFused(op) {
				return node
			}
			instrs = m.counters.Instructions
			if condHolds(op.Cond, m.flags) {
				m.pc = uint64(op.Imm)
			} else {
				m.pc = uint64(op.Imm2)
			}
			goto chainTry
		case tcg.KCmpBrI:
			a := int64(regs[op.A1])
			switch {
			case a < op.Imm:
				m.flags = -1
			case a > op.Imm:
				m.flags = 1
			default:
				m.flags = 0
			}
			m.counters.Instructions = instrs
			if credited == 0 && i == len(ops)-1 && tb.OpCounts != nil {
				if node.execs == 0 {
					m.dirtyPerOp = append(m.dirtyPerOp, node)
				}
				node.execs++
			} else {
				m.creditPerOp(tb, credited, i)
			}
			if !m.retireFused(op) {
				return node
			}
			instrs = m.counters.Instructions
			if condHolds(op.Cond, m.flags) {
				m.pc = uint64(op.Imm2)
			} else {
				m.pc = op.GuestPC2 + isa.InstrSize
			}
			goto chainTry
		case tcg.KCall:
			m.counters.Instructions = instrs
			if credited == 0 && i == len(ops)-1 && tb.OpCounts != nil {
				if node.execs == 0 {
					m.dirtyPerOp = append(m.dirtyPerOp, node)
				}
				node.execs++
			} else {
				m.creditPerOp(tb, credited, i)
			}
			sp := regs[tcg.SPReg] - 8
			if base := sp &^ (PageSize - 1); sp-base <= PageSize-8 {
				if p := mem.lookup(base); p != nil {
					binary.LittleEndian.PutUint64(p.data[sp-base:sp-base+8], uint64(op.Imm2))
					regs[tcg.SPReg] = sp
					m.pc = uint64(op.Imm)
					goto chainTry
				}
			}
			if err := mem.Write64(sp, uint64(op.Imm2)); err != nil {
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return node
			}
			regs[tcg.SPReg] = sp
			m.pc = uint64(op.Imm)
			goto chainTry
		case tcg.KRet:
			m.counters.Instructions = instrs
			if credited == 0 && i == len(ops)-1 && tb.OpCounts != nil {
				if node.execs == 0 {
					m.dirtyPerOp = append(m.dirtyPerOp, node)
				}
				node.execs++
			} else {
				m.creditPerOp(tb, credited, i)
			}
			sp := regs[tcg.SPReg]
			if base := sp &^ (PageSize - 1); sp-base <= PageSize-8 {
				if p := mem.lookup(base); p != nil {
					regs[tcg.SPReg] = sp + 8
					m.pc = binary.LittleEndian.Uint64(p.data[sp-base : sp-base+8])
					goto chainTry
				}
			}
			ret, err := mem.Read64(sp)
			if err != nil {
				m.pc = op.GuestPC
				m.kill(SIGSEGV, err.Error())
				return node
			}
			regs[tcg.SPReg] = sp + 8
			m.pc = ret
			goto chainTry

		case tcg.KSyscall:
			m.counters.Instructions = instrs
			if credited == 0 && i == len(ops)-1 && tb.OpCounts != nil {
				if node.execs == 0 {
					m.dirtyPerOp = append(m.dirtyPerOp, node)
				}
				node.execs++
			} else {
				m.creditPerOp(tb, credited, i)
			}
			m.pc = uint64(op.Imm2)
			m.doSyscall(isa.Sys(op.Imm), op.GuestPC)
			return node // KSyscall always ends the TB

		case tcg.KHlt:
			m.counters.Instructions = instrs
			if credited == 0 && i == len(ops)-1 && tb.OpCounts != nil {
				if node.execs == 0 {
					m.dirtyPerOp = append(m.dirtyPerOp, node)
				}
				node.execs++
			} else {
				m.creditPerOp(tb, credited, i)
			}
			m.pc = op.GuestPC
			m.term = &Termination{Reason: ReasonExited, Code: int64(regs[tcg.GPR0]), PC: m.pc}
			return node

		case tcg.KHelper:
			if op.Helper >= 0 && op.Helper < len(m.helpers) {
				m.counters.Instructions = instrs
				m.creditPerOp(tb, credited, i)
				credited = i + 1
				m.helpers[op.Helper](m, op)
				instrs = m.counters.Instructions
				if m.term != nil {
					return node
				}
				// The helper may have seeded taint (fault injection) or
				// enabled tracking; the rest of the block must propagate it.
				if m.TaintEnabled && m.Shadow.Live() {
					m.execTBFull(tb, i+1)
					return node
				}
			}

		default:
			m.counters.Instructions = instrs
			m.creditPerOp(tb, credited, i)
			m.pc = op.GuestPC
			m.kill(SIGILL, "unimplemented micro-op "+op.Kind.String())
			return node
		}
	}
	m.counters.Instructions = instrs
	if credited == 0 && tb.OpCounts != nil {
		if node.execs == 0 {
			m.dirtyPerOp = append(m.dirtyPerOp, node)
		}
		node.execs++
	} else {
		m.creditPerOp(tb, credited, len(ops)-1)
	}
	m.pc = tb.NextPC

chainTry:
	// Follow the taken edge in place when permitted — the goto_tb analogue.
	// The guard order matches step(): pending aborts first, then the overlay
	// generation (a helper may have flushed translations mid-block, severing
	// every chain), then the dispatch condition execTB would apply.
	if !chain || m.abort.p.Load() != nil || m.Trans.Gen() != m.chains.gen ||
		(m.TaintEnabled && m.Shadow.Live()) {
		return node
	}
	for k := range node.out {
		if e := node.out[k]; e.to != nil && e.pc == m.pc {
			node.lastHit = k
			node = e.to
			m.counters.ChainedTBs++
			m.counters.TBsExecuted++
			m.counters.FastPathTBs++
			// Re-read the per-block cached hooks exactly where a fresh
			// execTBFast call would.
			trace = m.execTrace
			sampleOn = m.TaintEnabled && m.Hooks.Sample != nil
			goto nextBlock
		}
	}
	return node
}

// creditPerOp applies the fast loop's deferred per-opcode counts for
// ops[from..last] of tb. The common case — a block executed from its top
// through its final op — takes the precomputed histogram; partial executions
// (kills, budget stops, helper sites) walk the retired prefix, reproducing
// the full loop's per-instruction attribution exactly.
func (m *Machine) creditPerOp(tb *tcg.TB, from, last int) {
	if from == 0 && last == len(tb.Ops)-1 && tb.OpCounts != nil {
		for _, oc := range tb.OpCounts {
			m.counters.PerOp[oc.Op] += oc.N
		}
		return
	}
	for i := from; i <= last; i++ {
		if tb.Ops[i].First {
			m.counters.PerOp[tb.Ops[i].GuestOp]++
		}
	}
}

// flushPerOp folds every dirty chain node's batched block credit into PerOp:
// each complete fast-loop execution of a block costs one counter increment
// on its node, and the histogram is applied execs-fold here. Partial credits
// increment PerOp directly and so commute with the batch; only a read needs
// the flush (Counters() is the sole read path, so observed values are exact).
func (m *Machine) flushPerOp() {
	if len(m.dirtyPerOp) == 0 {
		return
	}
	for _, n := range m.dirtyPerOp {
		for _, oc := range n.tb.OpCounts {
			m.counters.PerOp[oc.Op] += oc.N * n.execs
		}
		n.execs = 0
	}
	m.dirtyPerOp = m.dirtyPerOp[:0]
}
