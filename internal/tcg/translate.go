package tcg

import (
	"fmt"
	"time"

	"chaser/internal/isa"
	"chaser/internal/obs"
)

// MaxTBInstrs bounds the number of guest instructions per translation block.
const MaxTBInstrs = 32

// InstrumentHook runs at translation time for every guest instruction and
// returns micro-ops to prepend in front of the instruction's own translation.
// This is the mechanism Chaser uses for just-in-time fault injection: only
// instructions the hook chooses to instrument pay any runtime cost.
type InstrumentHook func(ins isa.Instr, pc uint64) []Op

// Stats counts translator activity.
type Stats struct {
	Translations uint64 // blocks translated by this translator
	CacheHits    uint64 // overlay hits (includes pass-through base blocks)
	CacheMisses  uint64 // overlay misses
	BaseHits     uint64 // overlay misses served by the shared base cache
	BaseMisses   uint64 // overlay misses that fell through to translation
	Flushes      uint64
	HelperOps    uint64 // instrumentation micro-ops inserted
	OptRewrites  uint64 // peephole rewrites applied
	FusedOps     uint64 // micro-op pairs collapsed by the fusion pass
	OpsEmitted   uint64 // micro-ops emitted into translated blocks

	// OverlayBlocks and InstrumentedBlocks are snapshots, not counters: the
	// current overlay population and how many of those blocks were privately
	// translated because a hook instrumented them.
	OverlayBlocks      uint64
	InstrumentedBlocks uint64
}

// Translator converts guest code into cached translation blocks.
//
// The cache is two-layered. The base layer is a shared, immutable BaseCache
// of clean translations, typically one per campaign; the overlay is this
// translator's private view, holding instrumented blocks plus pass-through
// references to base blocks. Block consults the overlay first, then the base;
// AddHook and Flush invalidate only the overlay, so arming an injector on one
// machine never throws away (or races with) the translations its peers share.
type Translator struct {
	prog    *isa.Program
	base    *BaseCache
	overlay map[uint64]*TB
	// instrumented counts overlay blocks that were privately translated
	// because an armed hook placed micro-ops in them — the O(targeted
	// blocks) work that remains per run once the base cache is warm.
	instrumented uint64
	hooks        []InstrumentHook
	stats        Stats
	noOpt        bool
	noFuse       bool
	gen          uint64

	// obsLat, when attached, observes per-block translation latency. It is
	// the only live instrument on the translator: translations are rare
	// (cache misses only), so the time.Now pair is off the execution hot
	// path; all other translator telemetry is flushed from Stats at run end.
	obsLat *obs.Histogram
}

// NewTranslator creates a translator with a private base cache and the
// peephole optimizer enabled.
func NewTranslator(prog *isa.Program) *Translator {
	return NewSharedTranslator(prog, NewBaseCache(prog))
}

// NewSharedTranslator creates a translator whose clean translations are
// served from (and published into) the shared base cache. A nil base, or one
// built for a different program, falls back to a private cache.
func NewSharedTranslator(prog *isa.Program, base *BaseCache) *Translator {
	if base == nil || base.prog != prog {
		base = NewBaseCache(prog)
	}
	return &Translator{
		prog:    prog,
		base:    base,
		overlay: make(map[uint64]*TB),
		noOpt:   base.noOpt,
		noFuse:  base.noFuse,
	}
}

// SetOptimizer toggles the peephole optimizer (on by default); campaigns
// never need to touch this, but the ablation benchmarks do. Disabling the
// optimizer disables the fusion pass too: fused kinds are an optimizer
// product, so the "optimizer off" baseline is the raw expander output.
func (t *Translator) SetOptimizer(on bool) {
	t.noOpt = !on
}

// SetFusion toggles the micro-op fusion pass alone (on by default), leaving
// the 1:1 peephole rewrites in place. Only the fusion ablation benchmarks
// need this.
func (t *Translator) SetFusion(on bool) {
	t.noFuse = !on
}

// AddHook registers an instrumentation hook. Hooks apply to blocks translated
// after registration; call Flush to force retranslation of cached blocks.
func (t *Translator) AddHook(h InstrumentHook) {
	t.hooks = append(t.hooks, h)
}

// ClearHooks removes all instrumentation hooks (the fi_clean_cb path: after
// injection completes, the injector detaches).
func (t *Translator) ClearHooks() {
	t.hooks = nil
}

// Flush empties the translation overlay, forcing the next lookup of every
// block to re-decide instrumentation — invoked when the target process
// creation event is captured. The shared base cache is untouched: clean
// blocks are re-admitted through it without retranslation, so only blocks an
// armed hook actually instruments are translated again. Bumping the
// generation invalidates every chained block edge.
func (t *Translator) Flush() {
	t.overlay = make(map[uint64]*TB)
	t.instrumented = 0
	t.stats.Flushes++
	t.gen++
}

// Gen returns the current translation-overlay generation.
func (t *Translator) Gen() uint64 { return t.gen }

// Base returns the shared base cache this translator publishes into.
func (t *Translator) Base() *BaseCache { return t.base }

// Stats returns a snapshot of translator counters.
func (t *Translator) Stats() Stats {
	s := t.stats
	s.OverlayBlocks = uint64(len(t.overlay))
	s.InstrumentedBlocks = t.instrumented
	return s
}

// AttachObs registers the translator's live instruments on reg (nil disables
// them). Call before the machine runs.
func (t *Translator) AttachObs(reg *obs.Registry) {
	t.obsLat = reg.Histogram("tcg_translate_seconds", obs.LatencyBuckets...)
}

// Block returns the translation block starting at guest address pc.
//
// Lookup order: the private overlay first, then the shared base cache. A
// base block is admitted into the overlay as a pass-through reference when no
// armed hook wants to instrument it, so the instrumentation decision is made
// once per block, not once per execution. Only on a full miss (or when a hook
// claims the block) does the translator do translation work; clean results
// are published to the shared base so peers and later runs skip them.
func (t *Translator) Block(pc uint64) (*TB, error) {
	if tb, ok := t.overlay[pc]; ok {
		t.stats.CacheHits++
		return tb, nil
	}
	t.stats.CacheMisses++
	if tb, ok := t.base.lookup(pc); ok {
		t.stats.BaseHits++
		if !t.hooksWant(tb) {
			t.overlay[pc] = tb
			return tb, nil
		}
	} else {
		t.stats.BaseMisses++
	}
	var tStart time.Time
	if t.obsLat != nil {
		tStart = time.Now()
	}
	tb, inserted, err := t.translate(pc)
	if err != nil {
		return nil, err
	}
	if t.obsLat != nil {
		t.obsLat.Observe(time.Since(tStart).Seconds())
	}
	if !t.noOpt {
		// Fusion runs first: the peephole would rewrite zero-displacement
		// KAddI addressing into KMov and hide the dominant fusion pattern.
		if !t.noFuse {
			var fused uint64
			tb.Ops, fused = fuse(tb.Ops)
			t.stats.FusedOps += fused
		}
		t.stats.OptRewrites += optimize(tb.Ops)
	}
	tb.OpCounts = countOps(tb.Ops)
	t.stats.Translations++
	if inserted == 0 {
		// Clean translation: publish it. The base returns the canonical
		// block, so machines that raced on the same miss share one *TB.
		tb = t.base.insert(pc, tb)
	} else {
		t.instrumented++
	}
	t.overlay[pc] = tb
	return tb, nil
}

// hooksWant reports whether any armed hook would place micro-ops in front of
// an instruction of the (clean) block tb. It is called once per block per
// overlay admission, never on the execution hot path.
func (t *Translator) hooksWant(tb *TB) bool {
	if len(t.hooks) == 0 {
		return false
	}
	for i := range tb.Ops {
		op := &tb.Ops[i]
		if !op.First {
			continue
		}
		ins, ok := t.prog.InstrAt(op.GuestPC)
		if !ok {
			continue
		}
		for _, h := range t.hooks {
			if len(h(ins, op.GuestPC)) > 0 {
				return true
			}
		}
		// A fused compare-and-branch covers a second guest instruction whose
		// First boundary was folded away; probe it too so hooks targeting
		// branch opcodes still claim the block (retranslation then inserts
		// the helper between cmp and jcc, which blocks the fusion).
		if op.Kind == KCmpBr || op.Kind == KCmpBrI {
			if ins2, ok := t.prog.InstrAt(op.GuestPC2); ok {
				for _, h := range t.hooks {
					if len(h(ins2, op.GuestPC2)) > 0 {
						return true
					}
				}
			}
		}
	}
	return false
}

// translate builds a TB beginning at pc, returning the number of
// instrumentation micro-ops the armed hooks inserted.
func (t *Translator) translate(pc uint64) (*TB, int, error) {
	tb := &TB{PC: pc}
	inserted := 0
	cur := pc
	for tb.GuestLen < MaxTBInstrs {
		ins, ok := t.prog.InstrAt(cur)
		if !ok {
			if tb.GuestLen > 0 {
				// A block that runs off the end of code: let execution
				// reach the bad address and fault there.
				break
			}
			return nil, 0, &isa.BadOpcodeError{PC: cur, Opcode: 0}
		}
		for _, h := range t.hooks {
			pre := h(ins, cur)
			for i := range pre {
				pre[i].GuestPC = cur
				pre[i].GuestOp = ins.Op
			}
			t.stats.HelperOps += uint64(len(pre))
			inserted += len(pre)
			tb.Ops = append(tb.Ops, pre...)
		}
		ops, err := expand(ins, cur)
		if err != nil {
			return nil, 0, err
		}
		if len(ops) > 0 {
			ops[0].First = true
		}
		tb.Ops = append(tb.Ops, ops...)
		tb.GuestLen++
		cur += isa.InstrSize
		if ins.Op.IsBranch() || ins.Op == isa.OpSyscall {
			break
		}
	}
	tb.NextPC = cur
	t.stats.OpsEmitted += uint64(len(tb.Ops))
	return tb, inserted, nil
}

// expand translates one guest instruction into micro-ops.
func expand(ins isa.Instr, pc uint64) ([]Op, error) {
	g := func(r isa.Reg) MReg { return GPR(r) }
	f := func(r isa.Reg) MReg { return FPR(r) }
	base := Op{GuestPC: pc, GuestOp: ins.Op}
	one := func(k Kind, a0, a1, a2 MReg, imm int64) []Op {
		op := base
		op.Kind, op.A0, op.A1, op.A2, op.Imm = k, a0, a1, a2, imm
		return []Op{op}
	}
	next := int64(pc + isa.InstrSize)

	switch ins.Op {
	case isa.OpNop:
		return one(KNop, 0, 0, 0, 0), nil
	case isa.OpHlt:
		return one(KHlt, 0, 0, 0, 0), nil
	case isa.OpMovI:
		return one(KMovI, g(ins.Rd), 0, 0, ins.Imm), nil
	case isa.OpMov:
		return one(KMov, g(ins.Rd), g(ins.Rs1), 0, 0), nil
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpMod,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr:
		return one(intKind(ins.Op), g(ins.Rd), g(ins.Rs1), g(ins.Rs2), 0), nil
	case isa.OpAddI:
		return one(KAddI, g(ins.Rd), g(ins.Rs1), 0, ins.Imm), nil
	case isa.OpMulI:
		return one(KMulI, g(ins.Rd), g(ins.Rs1), 0, ins.Imm), nil
	case isa.OpNot:
		return one(KNot, g(ins.Rd), g(ins.Rs1), 0, 0), nil
	case isa.OpFMovI:
		return one(KMovI, f(ins.Rd), 0, 0, ins.Imm), nil
	case isa.OpFMov:
		return one(KMov, f(ins.Rd), f(ins.Rs1), 0, 0), nil
	case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv:
		return one(floatKind(ins.Op), f(ins.Rd), f(ins.Rs1), f(ins.Rs2), 0), nil
	case isa.OpFNeg:
		return one(KFNeg, f(ins.Rd), f(ins.Rs1), 0, 0), nil
	case isa.OpCvtIF:
		return one(KCvtIF, f(ins.Rd), g(ins.Rs1), 0, 0), nil
	case isa.OpCvtFI:
		return one(KCvtFI, g(ins.Rd), f(ins.Rs1), 0, 0), nil

	case isa.OpLd, isa.OpLdB, isa.OpFLd:
		addr := one(KAddI, T0, g(ins.Rs1), 0, ins.Imm)
		dst := g(ins.Rd)
		kind := KLd64
		if ins.Op == isa.OpLdB {
			kind = KLd8
		}
		if ins.Op == isa.OpFLd {
			dst = f(ins.Rd)
		}
		return append(addr, one(kind, dst, T0, 0, 0)...), nil
	case isa.OpSt, isa.OpStB, isa.OpFSt:
		addr := one(KAddI, T0, g(ins.Rs1), 0, ins.Imm)
		src := g(ins.Rs2)
		kind := KSt64
		if ins.Op == isa.OpStB {
			kind = KSt8
		}
		if ins.Op == isa.OpFSt {
			src = f(ins.Rs2)
		}
		return append(addr, one(kind, 0, T0, src, 0)...), nil

	case isa.OpCmp:
		return one(KSetc, FlagsReg, g(ins.Rs1), g(ins.Rs2), 0), nil
	case isa.OpCmpI:
		return one(KSetcI, FlagsReg, g(ins.Rs1), 0, ins.Imm), nil
	case isa.OpFCmp:
		return one(KFSetc, FlagsReg, f(ins.Rs1), f(ins.Rs2), 0), nil

	case isa.OpJmp:
		return one(KBr, 0, 0, 0, ins.Imm), nil
	case isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge:
		op := base
		op.Kind, op.Imm, op.Imm2, op.Cond = KBrCond, ins.Imm, next, ins.Op
		return []Op{op}, nil
	case isa.OpCall:
		op := base
		op.Kind, op.Imm, op.Imm2 = KCall, ins.Imm, next
		return []Op{op}, nil
	case isa.OpRet:
		return one(KRet, 0, 0, 0, 0), nil

	case isa.OpPush, isa.OpFPush:
		src := g(ins.Rs1)
		if ins.Op == isa.OpFPush {
			src = f(ins.Rs1)
		}
		ops := one(KAddI, SPReg, SPReg, 0, -8)
		return append(ops, one(KSt64, 0, SPReg, src, 0)...), nil
	case isa.OpPop, isa.OpFPop:
		dst := g(ins.Rd)
		if ins.Op == isa.OpFPop {
			dst = f(ins.Rd)
		}
		ops := one(KLd64, dst, SPReg, 0, 0)
		return append(ops, one(KAddI, SPReg, SPReg, 0, 8)...), nil

	case isa.OpSyscall:
		op := base
		op.Kind, op.Imm, op.Imm2 = KSyscall, ins.Imm, next
		return []Op{op}, nil
	}
	return nil, fmt.Errorf("tcg: cannot translate %v at %#x", ins.Op, pc)
}

func intKind(op isa.Op) Kind {
	switch op {
	case isa.OpAdd:
		return KAdd
	case isa.OpSub:
		return KSub
	case isa.OpMul:
		return KMul
	case isa.OpDiv:
		return KDiv
	case isa.OpMod:
		return KMod
	case isa.OpAnd:
		return KAnd
	case isa.OpOr:
		return KOr
	case isa.OpXor:
		return KXor
	case isa.OpShl:
		return KShl
	case isa.OpShr:
		return KShr
	}
	return KInvalid
}

func floatKind(op isa.Op) Kind {
	switch op {
	case isa.OpFAdd:
		return KFAdd
	case isa.OpFSub:
		return KFSub
	case isa.OpFMul:
		return KFMul
	case isa.OpFDiv:
		return KFDiv
	}
	return KInvalid
}
