package tcg

import (
	"fmt"
	"time"

	"chaser/internal/isa"
	"chaser/internal/obs"
)

// MaxTBInstrs bounds the number of guest instructions per translation block.
const MaxTBInstrs = 32

// InstrumentHook runs at translation time for every guest instruction and
// returns micro-ops to prepend in front of the instruction's own translation.
// This is the mechanism Chaser uses for just-in-time fault injection: only
// instructions the hook chooses to instrument pay any runtime cost.
type InstrumentHook func(ins isa.Instr, pc uint64) []Op

// Stats counts translator activity.
type Stats struct {
	Translations uint64 // blocks translated
	CacheHits    uint64
	CacheMisses  uint64
	Flushes      uint64
	HelperOps    uint64 // instrumentation micro-ops inserted
	OptRewrites  uint64 // peephole rewrites applied
	OpsEmitted   uint64 // micro-ops emitted into translated blocks
}

// Translator converts guest code into cached translation blocks.
type Translator struct {
	prog  *isa.Program
	cache map[uint64]*TB
	hooks []InstrumentHook
	stats Stats
	noOpt bool
	gen   uint64

	// obsLat, when attached, observes per-block translation latency. It is
	// the only live instrument on the translator: translations are rare
	// (cache misses only), so the time.Now pair is off the execution hot
	// path; all other translator telemetry is flushed from Stats at run end.
	obsLat *obs.Histogram
}

// NewTranslator creates a translator for the program with the peephole
// optimizer enabled.
func NewTranslator(prog *isa.Program) *Translator {
	return &Translator{prog: prog, cache: make(map[uint64]*TB)}
}

// SetOptimizer toggles the peephole optimizer (on by default); campaigns
// never need to touch this, but the ablation benchmarks do.
func (t *Translator) SetOptimizer(on bool) {
	t.noOpt = !on
}

// AddHook registers an instrumentation hook. Hooks apply to blocks translated
// after registration; call Flush to force retranslation of cached blocks.
func (t *Translator) AddHook(h InstrumentHook) {
	t.hooks = append(t.hooks, h)
}

// ClearHooks removes all instrumentation hooks (the fi_clean_cb path: after
// injection completes, the injector detaches).
func (t *Translator) ClearHooks() {
	t.hooks = nil
}

// Flush empties the translation cache, forcing the next round of binary code
// translation — invoked when the target process creation event is captured.
// Bumping the generation invalidates every chained block edge.
func (t *Translator) Flush() {
	t.cache = make(map[uint64]*TB)
	t.stats.Flushes++
	t.gen++
}

// Gen returns the current translation-cache generation.
func (t *Translator) Gen() uint64 { return t.gen }

// Stats returns a snapshot of translator counters.
func (t *Translator) Stats() Stats { return t.stats }

// AttachObs registers the translator's live instruments on reg (nil disables
// them). Call before the machine runs.
func (t *Translator) AttachObs(reg *obs.Registry) {
	t.obsLat = reg.Histogram("tcg_translate_seconds", obs.LatencyBuckets...)
}

// Block returns the translation block starting at guest address pc,
// translating and caching it on a miss.
func (t *Translator) Block(pc uint64) (*TB, error) {
	if tb, ok := t.cache[pc]; ok {
		t.stats.CacheHits++
		return tb, nil
	}
	t.stats.CacheMisses++
	var tStart time.Time
	if t.obsLat != nil {
		tStart = time.Now()
	}
	tb, err := t.translate(pc)
	if err != nil {
		return nil, err
	}
	if t.obsLat != nil {
		t.obsLat.Observe(time.Since(tStart).Seconds())
	}
	if !t.noOpt {
		t.stats.OptRewrites += optimize(tb.Ops)
	}
	tb.Gen = t.gen
	t.cache[pc] = tb
	t.stats.Translations++
	return tb, nil
}

// translate builds a TB beginning at pc.
func (t *Translator) translate(pc uint64) (*TB, error) {
	tb := &TB{PC: pc}
	cur := pc
	for tb.GuestLen < MaxTBInstrs {
		ins, ok := t.prog.InstrAt(cur)
		if !ok {
			if tb.GuestLen > 0 {
				// A block that runs off the end of code: let execution
				// reach the bad address and fault there.
				break
			}
			return nil, &isa.BadOpcodeError{PC: cur, Opcode: 0}
		}
		for _, h := range t.hooks {
			pre := h(ins, cur)
			for i := range pre {
				pre[i].GuestPC = cur
				pre[i].GuestOp = ins.Op
			}
			t.stats.HelperOps += uint64(len(pre))
			tb.Ops = append(tb.Ops, pre...)
		}
		ops, err := expand(ins, cur)
		if err != nil {
			return nil, err
		}
		if len(ops) > 0 {
			ops[0].First = true
		}
		tb.Ops = append(tb.Ops, ops...)
		tb.GuestLen++
		cur += isa.InstrSize
		if ins.Op.IsBranch() || ins.Op == isa.OpSyscall {
			break
		}
	}
	tb.NextPC = cur
	t.stats.OpsEmitted += uint64(len(tb.Ops))
	return tb, nil
}

// expand translates one guest instruction into micro-ops.
func expand(ins isa.Instr, pc uint64) ([]Op, error) {
	g := func(r isa.Reg) MReg { return GPR(r) }
	f := func(r isa.Reg) MReg { return FPR(r) }
	base := Op{GuestPC: pc, GuestOp: ins.Op}
	one := func(k Kind, a0, a1, a2 MReg, imm int64) []Op {
		op := base
		op.Kind, op.A0, op.A1, op.A2, op.Imm = k, a0, a1, a2, imm
		return []Op{op}
	}
	next := int64(pc + isa.InstrSize)

	switch ins.Op {
	case isa.OpNop:
		return one(KNop, 0, 0, 0, 0), nil
	case isa.OpHlt:
		return one(KHlt, 0, 0, 0, 0), nil
	case isa.OpMovI:
		return one(KMovI, g(ins.Rd), 0, 0, ins.Imm), nil
	case isa.OpMov:
		return one(KMov, g(ins.Rd), g(ins.Rs1), 0, 0), nil
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpMod,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr:
		return one(intKind(ins.Op), g(ins.Rd), g(ins.Rs1), g(ins.Rs2), 0), nil
	case isa.OpAddI:
		return one(KAddI, g(ins.Rd), g(ins.Rs1), 0, ins.Imm), nil
	case isa.OpMulI:
		return one(KMulI, g(ins.Rd), g(ins.Rs1), 0, ins.Imm), nil
	case isa.OpNot:
		return one(KNot, g(ins.Rd), g(ins.Rs1), 0, 0), nil
	case isa.OpFMovI:
		return one(KMovI, f(ins.Rd), 0, 0, ins.Imm), nil
	case isa.OpFMov:
		return one(KMov, f(ins.Rd), f(ins.Rs1), 0, 0), nil
	case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv:
		return one(floatKind(ins.Op), f(ins.Rd), f(ins.Rs1), f(ins.Rs2), 0), nil
	case isa.OpFNeg:
		return one(KFNeg, f(ins.Rd), f(ins.Rs1), 0, 0), nil
	case isa.OpCvtIF:
		return one(KCvtIF, f(ins.Rd), g(ins.Rs1), 0, 0), nil
	case isa.OpCvtFI:
		return one(KCvtFI, g(ins.Rd), f(ins.Rs1), 0, 0), nil

	case isa.OpLd, isa.OpLdB, isa.OpFLd:
		addr := one(KAddI, T0, g(ins.Rs1), 0, ins.Imm)
		dst := g(ins.Rd)
		kind := KLd64
		if ins.Op == isa.OpLdB {
			kind = KLd8
		}
		if ins.Op == isa.OpFLd {
			dst = f(ins.Rd)
		}
		return append(addr, one(kind, dst, T0, 0, 0)...), nil
	case isa.OpSt, isa.OpStB, isa.OpFSt:
		addr := one(KAddI, T0, g(ins.Rs1), 0, ins.Imm)
		src := g(ins.Rs2)
		kind := KSt64
		if ins.Op == isa.OpStB {
			kind = KSt8
		}
		if ins.Op == isa.OpFSt {
			src = f(ins.Rs2)
		}
		return append(addr, one(kind, 0, T0, src, 0)...), nil

	case isa.OpCmp:
		return one(KSetc, FlagsReg, g(ins.Rs1), g(ins.Rs2), 0), nil
	case isa.OpCmpI:
		return one(KSetcI, FlagsReg, g(ins.Rs1), 0, ins.Imm), nil
	case isa.OpFCmp:
		return one(KFSetc, FlagsReg, f(ins.Rs1), f(ins.Rs2), 0), nil

	case isa.OpJmp:
		return one(KBr, 0, 0, 0, ins.Imm), nil
	case isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge:
		op := base
		op.Kind, op.Imm, op.Imm2, op.Cond = KBrCond, ins.Imm, next, ins.Op
		return []Op{op}, nil
	case isa.OpCall:
		op := base
		op.Kind, op.Imm, op.Imm2 = KCall, ins.Imm, next
		return []Op{op}, nil
	case isa.OpRet:
		return one(KRet, 0, 0, 0, 0), nil

	case isa.OpPush, isa.OpFPush:
		src := g(ins.Rs1)
		if ins.Op == isa.OpFPush {
			src = f(ins.Rs1)
		}
		ops := one(KAddI, SPReg, SPReg, 0, -8)
		return append(ops, one(KSt64, 0, SPReg, src, 0)...), nil
	case isa.OpPop, isa.OpFPop:
		dst := g(ins.Rd)
		if ins.Op == isa.OpFPop {
			dst = f(ins.Rd)
		}
		ops := one(KLd64, dst, SPReg, 0, 0)
		return append(ops, one(KAddI, SPReg, SPReg, 0, 8)...), nil

	case isa.OpSyscall:
		op := base
		op.Kind, op.Imm, op.Imm2 = KSyscall, ins.Imm, next
		return []Op{op}, nil
	}
	return nil, fmt.Errorf("tcg: cannot translate %v at %#x", ins.Op, pc)
}

func intKind(op isa.Op) Kind {
	switch op {
	case isa.OpAdd:
		return KAdd
	case isa.OpSub:
		return KSub
	case isa.OpMul:
		return KMul
	case isa.OpDiv:
		return KDiv
	case isa.OpMod:
		return KMod
	case isa.OpAnd:
		return KAnd
	case isa.OpOr:
		return KOr
	case isa.OpXor:
		return KXor
	case isa.OpShl:
		return KShl
	case isa.OpShr:
		return KShr
	}
	return KInvalid
}

func floatKind(op isa.Op) Kind {
	switch op {
	case isa.OpFAdd:
		return KFAdd
	case isa.OpFSub:
		return KFSub
	case isa.OpFMul:
		return KFMul
	case isa.OpFDiv:
		return KFDiv
	}
	return KInvalid
}
