package tcg

// The peephole optimizer rewrites micro-ops in place after translation,
// mirroring (a small slice of) QEMU's TCG optimizer. Every rewrite is
// 1:1 — an op becomes a cheaper op, never removed — so guest-instruction
// boundaries (First flags), program counters, and instrumentation stay
// intact, and taint propagation only ever becomes more precise (identity
// copies propagate exact masks where the general arithmetic rule smears).

// optimize applies the peephole rewrites to a block's ops and returns the
// number of rewrites performed.
func optimize(ops []Op) uint64 {
	var n uint64
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case KAddI:
			if op.Imm == 0 {
				// r = r' + 0  ->  identity copy.
				op.Kind = KMov
				op.Imm = 0
				n++
			}
		case KMulI:
			if op.Imm == 1 {
				op.Kind = KMov
				op.Imm = 0
				n++
			}
		case KMov:
			if op.A0 == op.A1 {
				// Self-copy: architectural and taint state unchanged.
				op.Kind = KNop
				n++
			}
		case KShl, KShr, KAdd, KSub, KOr, KXor:
			// r = r' op r'' where both sources are the same register and
			// the op is XOR: result is zero -> constant.
			if op.Kind == KXor && op.A1 == op.A2 {
				op.Kind = KMovI
				op.Imm = 0
				n++
			}
		}
	}
	return n
}
