package tcg

import (
	"testing"

	"chaser/internal/isa"
)

// TestFuseCmpBranch pins the cross-instruction fusion: cmp+jcc collapses to
// one KCmpBr carrying both guest identities.
func TestFuseCmpBranch(t *testing.T) {
	target := int64(isa.CodeBase + 4*isa.InstrSize)
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpCmp, Rs1: isa.R1, Rs2: isa.R2},
		isa.Instr{Op: isa.OpJl, Imm: target},
		isa.Instr{Op: isa.OpNop},
		isa.Instr{Op: isa.OpNop},
		isa.Instr{Op: isa.OpHlt},
	))
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Ops) != 1 {
		t.Fatalf("ops = %d, want 1:\n%s", len(tb.Ops), tb.Dump())
	}
	op := tb.Ops[0]
	if op.Kind != KCmpBr || op.A1 != GPR(isa.R1) || op.A2 != GPR(isa.R2) {
		t.Errorf("fused op = %+v", op)
	}
	if op.Cond != isa.OpJl || op.Imm != target || uint64(op.Imm2) != isa.CodeBase+2*isa.InstrSize {
		t.Errorf("branch fields = %+v", op)
	}
	if op.GuestPC != isa.CodeBase || op.GuestOp != isa.OpCmp || !op.First {
		t.Errorf("first-instruction identity = %+v", op)
	}
	if op.GuestPC2 != isa.CodeBase+isa.InstrSize || op.GuestOp2 != isa.OpJl {
		t.Errorf("second-instruction identity = %+v", op)
	}
	if tb.GuestLen != 2 {
		t.Errorf("GuestLen = %d, want 2 (fusion must not change coverage)", tb.GuestLen)
	}
	if got := tr.Stats().FusedOps; got != 1 {
		t.Errorf("FusedOps = %d, want 1", got)
	}
}

// TestFuseCmpImmediateBranch: KSetcI+KBrCond (the loop-latch shape) fuses to
// KCmpBrI. The compare immediate stays in Imm, the taken target moves to
// Imm2, and the fall-through is reconstructed from the branch's guest
// address — the three-immediates-in-two-slots encoding.
func TestFuseCmpImmediateBranch(t *testing.T) {
	target := int64(isa.CodeBase)
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpCmpI, Rs1: isa.R1, Imm: 7},
		isa.Instr{Op: isa.OpJe, Imm: target},
	))
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Ops) != 1 {
		t.Fatalf("ops = %d, want 1:\n%s", len(tb.Ops), tb.Dump())
	}
	op := tb.Ops[0]
	if op.Kind != KCmpBrI || op.A1 != GPR(isa.R1) || op.Imm != 7 {
		t.Errorf("fused op = %+v", op)
	}
	if op.Cond != isa.OpJe || op.Imm2 != target {
		t.Errorf("branch fields = %+v", op)
	}
	if op.GuestPC != isa.CodeBase || op.GuestOp != isa.OpCmpI || !op.First {
		t.Errorf("first-instruction identity = %+v", op)
	}
	if op.GuestPC2 != isa.CodeBase+isa.InstrSize || op.GuestOp2 != isa.OpJe {
		t.Errorf("second-instruction identity = %+v", op)
	}
	if tb.GuestLen != 2 {
		t.Errorf("GuestLen = %d, want 2", tb.GuestLen)
	}
}

// TestFuseCmpImmediateFallthroughGuard: a hand-built KBrCond whose fall-through
// is not the next guest instruction must stay unfused — KCmpBrI cannot encode
// an arbitrary third immediate.
func TestFuseCmpImmediateFallthroughGuard(t *testing.T) {
	ops := []Op{
		{Kind: KSetcI, A1: GPR(isa.R1), Imm: 7, GuestPC: isa.CodeBase, GuestOp: isa.OpCmpI, First: true},
		{Kind: KBrCond, Cond: isa.OpJe, Imm: int64(isa.CodeBase),
			Imm2:    int64(isa.CodeBase + 9*isa.InstrSize), // not GuestPC+InstrSize
			GuestPC: isa.CodeBase + isa.InstrSize, GuestOp: isa.OpJe, First: true},
	}
	fused, n := fuse(ops)
	if n != 0 || len(fused) != 2 || fused[0].Kind != KSetcI || fused[1].Kind != KBrCond {
		t.Errorf("non-adjacent fall-through fused: n=%d ops=%+v", n, fused)
	}
}

// TestFusePush: push's addi sp + st64 [sp] pair fuses to a KStD whose address
// temp is the stack pointer itself.
func TestFusePush(t *testing.T) {
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpPush, Rs1: isa.R1},
		isa.Instr{Op: isa.OpHlt},
	))
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	op := tb.Ops[0]
	if op.Kind != KStD || op.A0 != SPReg || op.A1 != SPReg || op.A2 != GPR(isa.R1) || op.Imm != -8 {
		t.Errorf("fused push = %+v", op)
	}
	if !op.First {
		t.Error("fused push lost First flag")
	}
}

// TestFusePopNotFused: pop loads first and adjusts sp second, so there is no
// addi-before-access pair to fuse.
func TestFusePopNotFused(t *testing.T) {
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpPop, Rd: isa.R1},
		isa.Instr{Op: isa.OpHlt},
	))
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Ops[0].Kind != KLd64 || tb.Ops[1].Kind != KAddI {
		t.Errorf("pop shape changed:\n%s", tb.Dump())
	}
}

// TestFuseByteAccessNotFused: only 64-bit accesses fuse; ldb/stb keep their
// explicit address computation.
func TestFuseByteAccessNotFused(t *testing.T) {
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpLdB, Rd: isa.R1, Rs1: isa.R2, Imm: 4},
		isa.Instr{Op: isa.OpStB, Rs1: isa.R2, Rs2: isa.R1, Imm: 4},
		isa.Instr{Op: isa.OpHlt},
	))
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KAddI, KLd8, KAddI, KSt8, KHlt}
	for i, want := range kinds {
		if tb.Ops[i].Kind != want {
			t.Errorf("op %d = %v, want %v", i, tb.Ops[i].Kind, want)
		}
	}
}

// TestFuseBlockedByHelper: an instrumentation helper between cmp and jcc (or
// in front of a memory access) breaks adjacency, so hooked instructions fall
// back to the unfused, instrumented sequence.
func TestFuseBlockedByHelper(t *testing.T) {
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpCmp, Rs1: isa.R1, Rs2: isa.R2},
		isa.Instr{Op: isa.OpJe, Imm: int64(isa.CodeBase)},
	))
	tr.AddHook(func(ins isa.Instr, pc uint64) []Op {
		if ins.Op != isa.OpJe {
			return nil
		}
		return []Op{{Kind: KHelper, Helper: 3}}
	})
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]Kind, len(tb.Ops))
	for i, op := range tb.Ops {
		kinds[i] = op.Kind
	}
	want := []Kind{KSetc, KHelper, KBrCond}
	if len(kinds) != len(want) {
		t.Fatalf("ops = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("ops = %v, want %v", kinds, want)
		}
	}
}

// TestHooksWantSeesFusedBranch: a hook targeting the branch opcode must still
// claim a base block whose branch was folded into a KCmpBr, or arming an
// injector on branch instructions would silently never fire.
func TestHooksWantSeesFusedBranch(t *testing.T) {
	p := prog(
		isa.Instr{Op: isa.OpCmp, Rs1: isa.R1, Rs2: isa.R2},
		isa.Instr{Op: isa.OpJe, Imm: int64(isa.CodeBase)},
	)
	base := NewBaseCache(p)
	warm := NewSharedTranslator(p, base)
	if _, err := warm.Block(isa.CodeBase); err != nil {
		t.Fatal(err)
	}

	armed := NewSharedTranslator(p, base)
	armed.AddHook(func(ins isa.Instr, pc uint64) []Op {
		if ins.Op != isa.OpJe {
			return nil
		}
		return []Op{{Kind: KHelper, Helper: 9}}
	})
	tb, err := armed.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, op := range tb.Ops {
		if op.Kind == KHelper {
			found = true
		}
	}
	if !found {
		t.Errorf("hook on fused-away branch not honored:\n%s", tb.Dump())
	}
}

// TestSetFusionDisablesOnlyFusion: with fusion off the peephole still runs.
func TestSetFusionDisablesOnlyFusion(t *testing.T) {
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpMulI, Rd: isa.R3, Rs1: isa.R4, Imm: 1},
		isa.Instr{Op: isa.OpCmp, Rs1: isa.R1, Rs2: isa.R2},
		isa.Instr{Op: isa.OpJe, Imm: int64(isa.CodeBase)},
	))
	tr.SetFusion(false)
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Ops[0].Kind != KMov {
		t.Errorf("peephole off too: %+v", tb.Ops[0])
	}
	if tb.Ops[1].Kind != KSetc || tb.Ops[2].Kind != KBrCond {
		t.Errorf("fusion still on:\n%s", tb.Dump())
	}
	if tr.Stats().FusedOps != 0 {
		t.Error("FusedOps counted with fusion off")
	}
}

// TestBaseCacheSetFusionPropagates: translators created on a no-fusion base
// inherit the setting, so sharers agree on block shape.
func TestBaseCacheSetFusionPropagates(t *testing.T) {
	p := prog(
		isa.Instr{Op: isa.OpLd, Rd: isa.R1, Rs1: isa.R2, Imm: 8},
		isa.Instr{Op: isa.OpHlt},
	)
	base := NewBaseCache(p)
	base.SetFusion(false)
	tr := NewSharedTranslator(p, base)
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Ops[0].Kind != KAddI || tb.Ops[1].Kind != KLd64 {
		t.Errorf("base SetFusion(false) not inherited:\n%s", tb.Dump())
	}
}
