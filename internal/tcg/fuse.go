package tcg

import "chaser/internal/isa"

// The fusion pass runs before the peephole optimizer and collapses the two
// hottest micro-op pairs the expander emits into single fused dispatches,
// mirroring QEMU TCG's compare-and-branch lowering and base+displacement
// addressing folding. Unlike optimize (strictly 1:1 rewrites), fusion is 2:1
// and therefore has its own contract:
//
//   - KAddI T0-style addressing + KLd64/KSt64 within ONE guest instruction
//     fuses to KLdD/KStD. The fused op keeps the address temporary as an
//     explicit operand and the engine still writes the computed address into
//     it, so architectural (and taint) state stays bitwise identical to the
//     unfused sequence.
//   - KSetc + KBrCond across TWO adjacent guest instructions fuses to KCmpBr.
//     The branch's guest identity moves into GuestPC2/GuestOp2 and the engine
//     retires the second instruction explicitly, so instruction counters,
//     traces, budget checks, and sampling see exactly the unfused schedule.
//   - KSetcI + KBrCond fuses the same way to KCmpBrI (the loop-latch shape
//     `cmpi; jcc`). The pair carries three immediates — compare operand plus
//     two branch targets — and Op has two slots, so the fused op keeps the
//     compare immediate in Imm, the taken target in Imm2, and recomputes the
//     fall-through as GuestPC2+InstrSize. Fusion fires only when the branch's
//     fall-through actually equals that (always true for expander output; the
//     guard keeps hand-built op streams honest).
//
// Fusion never crosses a KHelper: instrumentation pre-ops sit between the
// candidate pair and break adjacency, so a hooked instruction automatically
// falls back to the unfused (and instrumented) sequence.

// fuse rewrites a block's op slice, returning the fused slice and the number
// of fusions performed. The input slice is reused as backing storage: the
// write cursor never passes the read cursor, so this is safe in place.
func fuse(ops []Op) ([]Op, uint64) {
	var n uint64
	out := ops[:0]
	for i := 0; i < len(ops); i++ {
		op := ops[i]
		if i+1 < len(ops) {
			next := &ops[i+1]
			switch {
			case op.Kind == KSetc && next.Kind == KBrCond && op.First && next.First:
				// cmp ; jcc  ->  cmpbr. The fused op inherits the compare's
				// identity (First, GuestPC, GuestOp, A1/A2) and carries the
				// branch targets, condition, and second guest instruction.
				f := op
				f.Kind = KCmpBr
				f.Imm, f.Imm2, f.Cond = next.Imm, next.Imm2, next.Cond
				f.GuestPC2, f.GuestOp2 = next.GuestPC, next.GuestOp
				out = append(out, f)
				i++
				n++
				continue
			case op.Kind == KSetcI && next.Kind == KBrCond && op.First && next.First &&
				uint64(next.Imm2) == next.GuestPC+isa.InstrSize:
				// cmpi ; jcc  ->  cmpbri. Imm stays the compare immediate,
				// Imm2 becomes the taken target; the fall-through is derived
				// from GuestPC2 at execution time.
				f := op
				f.Kind = KCmpBrI
				f.Imm2, f.Cond = next.Imm, next.Cond
				f.GuestPC2, f.GuestOp2 = next.GuestPC, next.GuestOp
				out = append(out, f)
				i++
				n++
				continue
			case op.Kind == KAddI && !next.First && op.GuestPC == next.GuestPC &&
				next.A1 == op.A0 &&
				(next.Kind == KLd64 || next.Kind == KSt64):
				// addi temp, base, disp ; ld64/st64 [temp]  ->  ldd/std.
				// KLdD: A0=dst  A1=base A2=addr-temp Imm=disp
				// KStD: A0=addr-temp A1=base A2=src  Imm=disp
				f := *next
				if next.Kind == KLd64 {
					f.Kind = KLdD
					f.A2 = op.A0
				} else {
					f.Kind = KStD
					f.A0 = op.A0
				}
				f.A1 = op.A1
				f.Imm = op.Imm
				f.First = op.First
				out = append(out, f)
				i++
				n++
				continue
			}
		}
		out = append(out, op)
	}
	return out, n
}
