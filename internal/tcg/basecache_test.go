package tcg

import (
	"sync"
	"testing"

	"chaser/internal/isa"
)

// raceProg builds a program with several chained blocks so concurrent
// translators exercise multiple cache entries.
func raceProg() *isa.Program {
	var code []isa.Instr
	for b := 0; b < 8; b++ {
		code = append(code,
			isa.Instr{Op: isa.OpMovI, Rd: isa.R1, Imm: int64(b)},
			isa.Instr{Op: isa.OpFAdd, Rd: isa.F0, Rs1: isa.F1, Rs2: isa.F2},
			isa.Instr{Op: isa.OpJmp, Imm: int64(isa.CodeBase + uint64(b+1)*3*isa.InstrSize)},
		)
	}
	code = append(code, isa.Instr{Op: isa.OpHlt})
	return &isa.Program{Name: "race", Entry: isa.CodeBase, Code: code}
}

// TestBaseCacheConcurrentTranslators hammers one shared base from many
// translators — some clean, some arming hooks and flushing in a loop — and
// checks that every translator sees correct, canonical blocks. Run under
// -race this is the concurrency-safety proof for the shared cache.
func TestBaseCacheConcurrentTranslators(t *testing.T) {
	p := raceProg()
	base := NewBaseCache(p)
	pcs := make([]uint64, 0, 9)
	for b := 0; b <= 8; b++ {
		pcs = append(pcs, isa.CodeBase+uint64(b)*3*isa.InstrSize)
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := NewSharedTranslator(p, base)
			armed := w%4 == 0 // every fourth translator injects
			if armed {
				tr.AddHook(func(ins isa.Instr, pc uint64) []Op {
					if ins.Op != isa.OpFAdd {
						return nil
					}
					return []Op{{Kind: KHelper, Helper: w}}
				})
			}
			for round := 0; round < 50; round++ {
				for _, pc := range pcs {
					tb, err := tr.Block(pc)
					if err != nil {
						errs <- err
						return
					}
					helpers := 0
					for i := range tb.Ops {
						if tb.Ops[i].Kind == KHelper {
							helpers++
						}
					}
					wantHelpers := 0
					if armed && tb.PC != pcs[len(pcs)-1] {
						wantHelpers = 1 // each non-hlt block holds one fadd
					}
					if helpers != wantHelpers {
						t.Errorf("worker %d pc %#x: %d helper ops, want %d", w, pc, helpers, wantHelpers)
						return
					}
				}
				if armed {
					tr.Flush() // exercise overlay invalidation under load
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := base.Len(); n != len(pcs) {
		t.Errorf("base blocks = %d, want %d", n, len(pcs))
	}
	bs := base.Stats()
	if bs.Hits == 0 || bs.Misses == 0 {
		t.Errorf("base stats = %+v, want activity on both counters", bs)
	}
}
