package tcg

import (
	"strings"
	"testing"

	"chaser/internal/isa"
)

func prog(code ...isa.Instr) *isa.Program {
	return &isa.Program{Name: "t", Entry: isa.CodeBase, Code: code}
}

func TestMRegMapping(t *testing.T) {
	if GPR(isa.R0) != GPR0 || GPR(isa.SP) != SPReg {
		t.Error("GPR mapping wrong")
	}
	if FPR(isa.F0) != FPR0 || FPR(isa.F15) != FPR0+15 {
		t.Error("FPR mapping wrong")
	}
	if !IsFPR(FPR(isa.F3)) || IsFPR(GPR(isa.R3)) || IsFPR(T0) {
		t.Error("IsFPR wrong")
	}
	names := []struct {
		m    MReg
		want string
	}{
		{GPR(isa.R5), "r5"}, {FPR(isa.F7), "f7"}, {T0, "t0"}, {T1, "t1"}, {FlagsReg, "flags"},
	}
	for _, tt := range names {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("MReg.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestExpandArithmetic(t *testing.T) {
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpMovI, Rd: isa.R1, Imm: 5},
		isa.Instr{Op: isa.OpAdd, Rd: isa.R2, Rs1: isa.R1, Rs2: isa.R1},
		isa.Instr{Op: isa.OpFAdd, Rd: isa.F1, Rs1: isa.F2, Rs2: isa.F3},
		isa.Instr{Op: isa.OpHlt},
	))
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatalf("Block: %v", err)
	}
	if tb.GuestLen != 4 {
		t.Fatalf("GuestLen = %d, want 4", tb.GuestLen)
	}
	if len(tb.Ops) != 4 {
		t.Fatalf("ops = %d, want 4: %s", len(tb.Ops), tb.Dump())
	}
	if tb.Ops[0].Kind != KMovI || tb.Ops[0].A0 != GPR(isa.R1) || tb.Ops[0].Imm != 5 {
		t.Errorf("op0 = %+v", tb.Ops[0])
	}
	if tb.Ops[2].Kind != KFAdd || tb.Ops[2].A0 != FPR(isa.F1) {
		t.Errorf("op2 = %+v", tb.Ops[2])
	}
	for i, op := range tb.Ops {
		if !op.First {
			t.Errorf("op %d not marked First", i)
		}
	}
}

func TestExpandMemoryUsesAddressTemp(t *testing.T) {
	p := prog(
		isa.Instr{Op: isa.OpLd, Rd: isa.R1, Rs1: isa.R2, Imm: 8},
		isa.Instr{Op: isa.OpFSt, Rs1: isa.R3, Rs2: isa.F4, Imm: -16},
		isa.Instr{Op: isa.OpHlt},
	)
	// With fusion off the expander's raw shape is visible:
	// ld expands to addi t0 + ld64; fst to addi t0 + st64.
	tr := NewTranslator(p)
	tr.SetFusion(false)
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatalf("Block: %v", err)
	}
	if tb.Ops[0].Kind != KAddI || tb.Ops[0].A0 != T0 || tb.Ops[0].Imm != 8 {
		t.Errorf("op0 = %+v", tb.Ops[0])
	}
	if tb.Ops[1].Kind != KLd64 || tb.Ops[1].A0 != GPR(isa.R1) || tb.Ops[1].A1 != T0 {
		t.Errorf("op1 = %+v", tb.Ops[1])
	}
	if tb.Ops[1].First {
		t.Error("second micro-op of ld marked First")
	}
	if tb.Ops[3].Kind != KSt64 || tb.Ops[3].A2 != FPR(isa.F4) {
		t.Errorf("op3 = %+v", tb.Ops[3])
	}

	// With fusion on (the default) each pair collapses into a single
	// base+displacement op that still names the address temp.
	tf := NewTranslator(p)
	ftb, err := tf.Block(isa.CodeBase)
	if err != nil {
		t.Fatalf("Block: %v", err)
	}
	if len(ftb.Ops) != 3 {
		t.Fatalf("fused ops = %d, want 3:\n%s", len(ftb.Ops), ftb.Dump())
	}
	ld := ftb.Ops[0]
	if ld.Kind != KLdD || ld.A0 != GPR(isa.R1) || ld.A1 != GPR(isa.R2) || ld.A2 != T0 || ld.Imm != 8 || !ld.First {
		t.Errorf("fused ld = %+v", ld)
	}
	st := ftb.Ops[1]
	if st.Kind != KStD || st.A0 != T0 || st.A1 != GPR(isa.R3) || st.A2 != FPR(isa.F4) || st.Imm != -16 || !st.First {
		t.Errorf("fused st = %+v", st)
	}
	if got := tf.Stats().FusedOps; got != 2 {
		t.Errorf("FusedOps = %d, want 2", got)
	}
}

func TestExpandPushPop(t *testing.T) {
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpPush, Rs1: isa.R1},
		isa.Instr{Op: isa.OpPop, Rd: isa.R2},
		isa.Instr{Op: isa.OpFPush, Rs1: isa.F1},
		isa.Instr{Op: isa.OpFPop, Rd: isa.F2},
		isa.Instr{Op: isa.OpHlt},
	))
	// This test pins the expander's raw shape; push fusion is covered by
	// TestFusePush.
	tr.SetFusion(false)
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatalf("Block: %v", err)
	}
	if tb.Ops[0].Kind != KAddI || tb.Ops[0].A0 != SPReg || tb.Ops[0].Imm != -8 {
		t.Errorf("push op0 = %+v", tb.Ops[0])
	}
	if tb.Ops[1].Kind != KSt64 || tb.Ops[1].A1 != SPReg || tb.Ops[1].A2 != GPR(isa.R1) {
		t.Errorf("push op1 = %+v", tb.Ops[1])
	}
	if tb.Ops[2].Kind != KLd64 || tb.Ops[2].A0 != GPR(isa.R2) {
		t.Errorf("pop op0 = %+v", tb.Ops[2])
	}
	if tb.Ops[5].Kind != KSt64 || tb.Ops[5].A2 != FPR(isa.F1) {
		t.Errorf("fpush store = %+v", tb.Ops[5])
	}
	if tb.Ops[6].Kind != KLd64 || tb.Ops[6].A0 != FPR(isa.F2) {
		t.Errorf("fpop load = %+v", tb.Ops[6])
	}
}

func TestBlockEndsAtBranch(t *testing.T) {
	target := int64(isa.CodeBase + 3*isa.InstrSize)
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpCmpI, Rs1: isa.R1, Imm: 0},
		isa.Instr{Op: isa.OpJne, Imm: target},
		isa.Instr{Op: isa.OpNop},
		isa.Instr{Op: isa.OpHlt},
	))
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatalf("Block: %v", err)
	}
	if tb.GuestLen != 2 {
		t.Fatalf("GuestLen = %d, want 2 (block must end at branch)", tb.GuestLen)
	}
	// cmpi+jne fuses, so the block ends in the immediate compare-and-branch.
	last := tb.Ops[len(tb.Ops)-1]
	if last.Kind != KCmpBrI || last.Cond != isa.OpJne || last.Imm2 != target {
		t.Errorf("last = %+v", last)
	}
	if last.GuestPC2+isa.InstrSize != isa.CodeBase+2*isa.InstrSize {
		t.Errorf("fallthrough = %#x", last.GuestPC2+isa.InstrSize)
	}
}

func TestBlockEndsAtSyscall(t *testing.T) {
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpSyscall, Imm: int64(isa.SysExit)},
		isa.Instr{Op: isa.OpNop},
	))
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatalf("Block: %v", err)
	}
	if tb.GuestLen != 1 {
		t.Fatalf("GuestLen = %d, want 1", tb.GuestLen)
	}
	op := tb.Ops[len(tb.Ops)-1]
	if op.Kind != KSyscall || isa.Sys(op.Imm) != isa.SysExit {
		t.Errorf("syscall op = %+v", op)
	}
	if uint64(op.Imm2) != isa.CodeBase+isa.InstrSize {
		t.Errorf("continuation = %#x", uint64(op.Imm2))
	}
}

func TestMaxTBInstrs(t *testing.T) {
	code := make([]isa.Instr, MaxTBInstrs+10)
	for i := range code {
		code[i] = isa.Instr{Op: isa.OpNop}
	}
	tr := NewTranslator(prog(code...))
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatalf("Block: %v", err)
	}
	if tb.GuestLen != MaxTBInstrs {
		t.Errorf("GuestLen = %d, want %d", tb.GuestLen, MaxTBInstrs)
	}
	if tb.NextPC != isa.CodeBase+MaxTBInstrs*isa.InstrSize {
		t.Errorf("NextPC = %#x", tb.NextPC)
	}
}

func TestCacheAndFlush(t *testing.T) {
	tr := NewTranslator(prog(isa.Instr{Op: isa.OpHlt}))
	if _, err := tr.Block(isa.CodeBase); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Block(isa.CodeBase); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Translations != 1 || s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
	// Flush drops only the overlay: with no hooks armed, the clean block is
	// re-admitted from the base cache without retranslation.
	tr.Flush()
	if _, err := tr.Block(isa.CodeBase); err != nil {
		t.Fatal(err)
	}
	s = tr.Stats()
	if s.Translations != 1 || s.Flushes != 1 || s.BaseHits != 1 {
		t.Errorf("stats after flush = %+v", s)
	}
	if tr.Gen() != 1 {
		t.Errorf("gen = %d, want 1 (flush must still sever chains)", tr.Gen())
	}
}

// TestFlushWithHooksRetranslatesOnlyTargetedBlocks pins the tentpole
// guarantee: arming a hook and flushing costs retranslation only for the
// blocks the hook instruments; every clean block is served from the base.
func TestFlushWithHooksRetranslatesOnlyTargetedBlocks(t *testing.T) {
	// Two blocks: one with the targeted fadd, one without.
	target := int64(isa.CodeBase + 2*isa.InstrSize)
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpFAdd, Rd: isa.F0, Rs1: isa.F1, Rs2: isa.F2},
		isa.Instr{Op: isa.OpJmp, Imm: target},
		isa.Instr{Op: isa.OpNop},
		isa.Instr{Op: isa.OpHlt},
	))
	pcs := []uint64{isa.CodeBase, isa.CodeBase + 2*isa.InstrSize}
	for _, pc := range pcs {
		if _, err := tr.Block(pc); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Stats().Translations; got != 2 {
		t.Fatalf("warm-up translations = %d, want 2", got)
	}

	tr.AddHook(func(ins isa.Instr, pc uint64) []Op {
		if ins.Op != isa.OpFAdd {
			return nil
		}
		return []Op{{Kind: KHelper, Helper: 7}}
	})
	tr.Flush()

	armed, err := tr.Block(pcs[0])
	if err != nil {
		t.Fatal(err)
	}
	clean, err := tr.Block(pcs[1])
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Translations != 3 {
		t.Errorf("translations = %d, want 3 (only the fadd block retranslates)", s.Translations)
	}
	if s.InstrumentedBlocks != 1 || s.OverlayBlocks != 2 {
		t.Errorf("overlay = %d instrumented / %d total, want 1/2", s.InstrumentedBlocks, s.OverlayBlocks)
	}
	found := false
	for _, op := range armed.Ops {
		if op.Kind == KHelper {
			found = true
		}
	}
	if !found {
		t.Errorf("armed block lost its helper:\n%s", armed.Dump())
	}
	for _, op := range clean.Ops {
		if op.Kind == KHelper {
			t.Errorf("clean block instrumented:\n%s", clean.Dump())
		}
	}
	// The instrumented block must not leak into the shared base.
	if n := tr.Base().Len(); n != 2 {
		t.Errorf("base blocks = %d, want 2", n)
	}
}

// TestSharedBaseCanonicalBlocks verifies that translators sharing a base
// converge on the same *TB for clean blocks and never see peers' hooks.
func TestSharedBaseCanonicalBlocks(t *testing.T) {
	p := prog(
		isa.Instr{Op: isa.OpMovI, Rd: isa.R1, Imm: 1},
		isa.Instr{Op: isa.OpHlt},
	)
	base := NewBaseCache(p)
	a := NewSharedTranslator(p, base)
	b := NewSharedTranslator(p, base)

	tba, err := a.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	tbb, err := b.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	if tba != tbb {
		t.Error("translators sharing a base returned distinct clean blocks")
	}
	if a.Stats().Translations != 1 || b.Stats().Translations != 0 {
		t.Errorf("translations a=%d b=%d, want 1/0", a.Stats().Translations, b.Stats().Translations)
	}

	// Arming b must give b a private instrumented block and leave a's view
	// (and the base) untouched.
	b.AddHook(func(ins isa.Instr, pc uint64) []Op {
		return []Op{{Kind: KHelper, Helper: 1}}
	})
	b.Flush()
	armed, err := b.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	if armed == tba {
		t.Error("instrumented block aliases the shared clean block")
	}
	again, err := a.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	if again != tba {
		t.Error("peer's arming changed a's clean block")
	}
	if bs := base.Stats(); bs.Blocks != 1 {
		t.Errorf("base blocks = %d, want 1", bs.Blocks)
	}
}

// TestSharedTranslatorProgramMismatch: a base built for another program must
// not serve wrong translations; the translator falls back to a private cache.
func TestSharedTranslatorProgramMismatch(t *testing.T) {
	p1 := prog(isa.Instr{Op: isa.OpHlt})
	p2 := prog(isa.Instr{Op: isa.OpNop}, isa.Instr{Op: isa.OpHlt})
	tr := NewSharedTranslator(p2, NewBaseCache(p1))
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	if tb.GuestLen != 2 {
		t.Errorf("GuestLen = %d, want 2 (translated against the wrong program?)", tb.GuestLen)
	}
	if tr.Base().Prog() != p2 {
		t.Error("mismatched base not replaced by a private one")
	}
}

// TestInstrumentationHook verifies the Fig. 3 mechanism: a helper-call
// micro-op is prepended only in front of targeted instructions.
func TestInstrumentationHook(t *testing.T) {
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpMovI, Rd: isa.R1, Imm: 1},
		isa.Instr{Op: isa.OpFAdd, Rd: isa.F0, Rs1: isa.F1, Rs2: isa.F2},
		isa.Instr{Op: isa.OpHlt},
	))
	const helperID = 42
	tr.AddHook(func(ins isa.Instr, pc uint64) []Op {
		if ins.Op != isa.OpFAdd {
			return nil
		}
		return []Op{{Kind: KHelper, Helper: helperID}}
	})
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatalf("Block: %v", err)
	}
	var helpers []Op
	for _, op := range tb.Ops {
		if op.Kind == KHelper {
			helpers = append(helpers, op)
		}
	}
	if len(helpers) != 1 {
		t.Fatalf("helper ops = %d, want 1\n%s", len(helpers), tb.Dump())
	}
	h := helpers[0]
	if h.Helper != helperID || h.GuestOp != isa.OpFAdd {
		t.Errorf("helper op = %+v", h)
	}
	if h.GuestPC != isa.CodeBase+isa.InstrSize {
		t.Errorf("helper GuestPC = %#x", h.GuestPC)
	}
	// The helper must precede the fadd micro-op.
	for i, op := range tb.Ops {
		if op.Kind == KFAdd {
			if i == 0 || tb.Ops[i-1].Kind != KHelper {
				t.Errorf("helper not immediately before fadd:\n%s", tb.Dump())
			}
		}
	}
	if got := tr.Stats().HelperOps; got != 1 {
		t.Errorf("HelperOps = %d, want 1", got)
	}
}

func TestClearHooks(t *testing.T) {
	tr := NewTranslator(prog(isa.Instr{Op: isa.OpHlt}))
	tr.AddHook(func(ins isa.Instr, pc uint64) []Op {
		return []Op{{Kind: KHelper, Helper: 1}}
	})
	tr.ClearHooks()
	tr.Flush()
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range tb.Ops {
		if op.Kind == KHelper {
			t.Error("helper op present after ClearHooks")
		}
	}
}

func TestBlockAtBadPC(t *testing.T) {
	tr := NewTranslator(prog(isa.Instr{Op: isa.OpHlt}))
	if _, err := tr.Block(isa.CodeBase + 100*isa.InstrSize); err == nil {
		t.Error("expected error for out-of-code pc")
	}
}

func TestRunOffCodeEnd(t *testing.T) {
	// A block whose straight-line run hits the end of the code segment ends
	// there with NextPC past the end; the fault is raised at execution time.
	tr := NewTranslator(prog(isa.Instr{Op: isa.OpNop}, isa.Instr{Op: isa.OpNop}))
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatalf("Block: %v", err)
	}
	if tb.GuestLen != 2 {
		t.Errorf("GuestLen = %d", tb.GuestLen)
	}
	if tb.NextPC != isa.CodeBase+2*isa.InstrSize {
		t.Errorf("NextPC = %#x", tb.NextPC)
	}
}

func TestDumpAndStrings(t *testing.T) {
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpLd, Rd: isa.R1, Rs1: isa.R2, Imm: 8},
		isa.Instr{Op: isa.OpCmp, Rs1: isa.R1, Rs2: isa.R2},
		isa.Instr{Op: isa.OpJe, Imm: int64(isa.CodeBase)},
	))
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	dump := tb.Dump()
	for _, want := range []string{"ldd r1, [r2+8]", "cmpbr(je) r1, r2"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	if KFAdd.String() != "fadd" || KHelper.String() != "call_helper" {
		t.Error("kind names wrong")
	}
	// The unfused forms still print through the same paths.
	raw := NewTranslator(tr.prog)
	raw.SetFusion(false)
	rtb, err := raw.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	rdump := rtb.Dump()
	for _, want := range []string{"addi_i64 t0, r2, 8", "ld64 r1, [t0]", "setc flags, r1, r2", "brcond(je)"} {
		if !strings.Contains(rdump, want) {
			t.Errorf("raw dump missing %q:\n%s", want, rdump)
		}
	}
}

func TestOptimizerRewrites(t *testing.T) {
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpLd, Rd: isa.R1, Rs1: isa.R2, Imm: 0},       // addi t0, r2, 0 -> mov
		isa.Instr{Op: isa.OpMulI, Rd: isa.R3, Rs1: isa.R4, Imm: 1},     // -> mov
		isa.Instr{Op: isa.OpMov, Rd: isa.R5, Rs1: isa.R5},              // -> nop
		isa.Instr{Op: isa.OpXor, Rd: isa.R6, Rs1: isa.R7, Rs2: isa.R7}, // -> movi 0
		isa.Instr{Op: isa.OpHlt},
	))
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	// Fusion runs before the peephole, so the zero-displacement load is
	// claimed by the fuser (KLdD), not rewritten to a mov.
	if tb.Ops[0].Kind != KLdD || tb.Ops[0].A1 != GPR(isa.R2) || tb.Ops[0].A2 != T0 || tb.Ops[0].Imm != 0 {
		t.Errorf("zero-disp load op = %+v", tb.Ops[0])
	}
	if tb.Ops[1].Kind != KMov {
		t.Errorf("muli-by-1 op = %+v", tb.Ops[1])
	}
	if tb.Ops[2].Kind != KNop {
		t.Errorf("self-mov op = %+v", tb.Ops[2])
	}
	if tb.Ops[3].Kind != KMovI || tb.Ops[3].Imm != 0 {
		t.Errorf("xor-self op = %+v", tb.Ops[3])
	}
	if got := tr.Stats().OptRewrites; got != 3 {
		t.Errorf("OptRewrites = %d, want 3", got)
	}
	if got := tr.Stats().FusedOps; got != 1 {
		t.Errorf("FusedOps = %d, want 1", got)
	}
	// First flags are preserved 1:1.
	firsts := 0
	for _, op := range tb.Ops {
		if op.First {
			firsts++
		}
	}
	if firsts != tb.GuestLen {
		t.Errorf("First flags = %d, want %d", firsts, tb.GuestLen)
	}
}

func TestOptimizerDisabled(t *testing.T) {
	tr := NewTranslator(prog(
		isa.Instr{Op: isa.OpLd, Rd: isa.R1, Rs1: isa.R2, Imm: 0},
		isa.Instr{Op: isa.OpHlt},
	))
	tr.SetOptimizer(false)
	tb, err := tr.Block(isa.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Ops[0].Kind != KAddI {
		t.Errorf("op rewritten with optimizer off: %+v", tb.Ops[0])
	}
	if tr.Stats().OptRewrites != 0 {
		t.Error("rewrites counted with optimizer off")
	}
}

func TestExpandAllOpcodes(t *testing.T) {
	// Translate a program containing every translatable opcode once; this
	// pins the full guest->micro-op mapping.
	target := int64(isa.CodeBase)
	code := []isa.Instr{
		{Op: isa.OpNop},
		{Op: isa.OpMovI, Rd: isa.R1, Imm: 1},
		{Op: isa.OpMov, Rd: isa.R2, Rs1: isa.R1},
		{Op: isa.OpAdd, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.OpSub, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.OpMul, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.OpDiv, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.OpMod, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.OpAddI, Rd: isa.R3, Rs1: isa.R1, Imm: 4},
		{Op: isa.OpMulI, Rd: isa.R3, Rs1: isa.R1, Imm: 4},
		{Op: isa.OpAnd, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.OpOr, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.OpXor, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.OpShl, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.OpShr, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.OpNot, Rd: isa.R3, Rs1: isa.R1},
		{Op: isa.OpFMovI, Rd: isa.F1, Imm: 42},
		{Op: isa.OpFMov, Rd: isa.F2, Rs1: isa.F1},
		{Op: isa.OpFAdd, Rd: isa.F3, Rs1: isa.F1, Rs2: isa.F2},
		{Op: isa.OpFSub, Rd: isa.F3, Rs1: isa.F1, Rs2: isa.F2},
		{Op: isa.OpFMul, Rd: isa.F3, Rs1: isa.F1, Rs2: isa.F2},
		{Op: isa.OpFDiv, Rd: isa.F3, Rs1: isa.F1, Rs2: isa.F2},
		{Op: isa.OpFNeg, Rd: isa.F3, Rs1: isa.F1},
		{Op: isa.OpCvtIF, Rd: isa.F1, Rs1: isa.R1},
		{Op: isa.OpCvtFI, Rd: isa.R1, Rs1: isa.F1},
		{Op: isa.OpLd, Rd: isa.R1, Rs1: isa.R2, Imm: 8},
		{Op: isa.OpSt, Rs1: isa.R2, Rs2: isa.R1, Imm: 8},
		{Op: isa.OpLdB, Rd: isa.R1, Rs1: isa.R2, Imm: 8},
		{Op: isa.OpStB, Rs1: isa.R2, Rs2: isa.R1, Imm: 8},
		{Op: isa.OpFLd, Rd: isa.F1, Rs1: isa.R2, Imm: 8},
		{Op: isa.OpFSt, Rs1: isa.R2, Rs2: isa.F1, Imm: 8},
		{Op: isa.OpCmp, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.OpCmpI, Rs1: isa.R1, Imm: 3},
		{Op: isa.OpFCmp, Rs1: isa.F1, Rs2: isa.F2},
		{Op: isa.OpPush, Rs1: isa.R1},
		{Op: isa.OpPop, Rd: isa.R1},
		{Op: isa.OpFPush, Rs1: isa.F1},
		{Op: isa.OpFPop, Rd: isa.F1},
		{Op: isa.OpSyscall, Imm: 1},
		{Op: isa.OpJe, Imm: target},
		{Op: isa.OpJne, Imm: target},
		{Op: isa.OpJl, Imm: target},
		{Op: isa.OpJle, Imm: target},
		{Op: isa.OpJg, Imm: target},
		{Op: isa.OpJge, Imm: target},
		{Op: isa.OpJmp, Imm: target},
		{Op: isa.OpCall, Imm: target},
		{Op: isa.OpRet},
		{Op: isa.OpHlt},
	}
	tr := NewTranslator(prog(code...))
	tr.SetOptimizer(false)
	covered := 0
	for pc := isa.CodeBase; pc < isa.CodeBase+uint64(len(code))*isa.InstrSize; {
		tb, err := tr.Block(pc)
		if err != nil {
			t.Fatalf("block at %#x: %v", pc, err)
		}
		if len(tb.Ops) == 0 && tb.GuestLen == 0 {
			t.Fatalf("empty block at %#x", pc)
		}
		covered += tb.GuestLen
		pc += uint64(tb.GuestLen) * isa.InstrSize
	}
	if covered != len(code) {
		t.Errorf("covered %d of %d instructions", covered, len(code))
	}
	// Dump every block's string form for the String() paths.
	for _, op := range []Op{
		{Kind: KSetcI, A1: GPR(isa.R1), Imm: 3},
		{Kind: KCall, Imm: 10, Imm2: 20},
		{Kind: KSyscall, Imm: 1, Imm2: 2},
		{Kind: KRet}, {Kind: KHlt}, {Kind: KNop},
		{Kind: KCvtIF, A0: FPR(isa.F1), A1: GPR(isa.R1)},
		{Kind: KLd8, A0: GPR(isa.R1), A1: T0},
		{Kind: KSt8, A1: T0, A2: GPR(isa.R1)},
		{Kind: KFSetc, A1: FPR(isa.F1), A2: FPR(isa.F2)},
		{Kind: KFAdd, A0: FPR(isa.F1), A1: FPR(isa.F2), A2: FPR(isa.F3)},
	} {
		if op.String() == "" {
			t.Errorf("empty string for %v", op.Kind)
		}
	}
	if Kind(200).String() == "" || MReg(200).String() == "" {
		t.Error("unknown kind/mreg names empty")
	}
}
