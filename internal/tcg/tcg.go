// Package tcg implements a Tiny-Code-Generator-style dynamic binary
// translation layer for the guest ISA, mirroring the role QEMU's TCG plays in
// the original Chaser.
//
// Guest instructions are translated into architecture-independent micro-ops
// grouped into translation blocks (TBs). TBs are cached by guest program
// counter; the cache can be flushed to force retranslation — which is how
// Chaser arms its just-in-time fault injector when a target process is
// created. Instrumentation hooks run at translation time and may prepend
// helper-call micro-ops in front of any guest instruction, exactly like the
// DECAF_inject_fault callback insertion shown in Fig. 3 of the paper.
package tcg

import (
	"fmt"

	"chaser/internal/isa"
)

// MReg addresses the unified micro-register file used by micro-ops: guest
// GPRs, guest FPRs (as raw IEEE-754 bits), two address temporaries, and the
// flags register.
type MReg uint8

// Micro-register file layout.
const (
	// GPR0 through GPR0+15 are the guest general-purpose registers.
	GPR0 MReg = 0
	// FPR0 through FPR0+15 are the guest floating-point registers.
	FPR0 MReg = 16
	// T0 and T1 are translator-internal temporaries (address computation).
	T0 MReg = 32
	T1 MReg = 33
	// FlagsReg holds the last comparison result as -1, 0 or +1.
	FlagsReg MReg = 34
	// NumMRegs is the size of the micro-register file.
	NumMRegs = 35
)

// GPR returns the micro-register for a guest general-purpose register.
func GPR(r isa.Reg) MReg { return GPR0 + MReg(r) }

// FPR returns the micro-register for a guest floating-point register.
func FPR(r isa.Reg) MReg { return FPR0 + MReg(r) }

// SPReg is the micro-register holding the guest stack pointer.
const SPReg = GPR0 + MReg(isa.SP)

// IsFPR reports whether m addresses the floating-point file.
func IsFPR(m MReg) bool { return m >= FPR0 && m < FPR0+16 }

// String names the micro-register.
func (m MReg) String() string {
	switch {
	case m < FPR0:
		return fmt.Sprintf("r%d", uint8(m))
	case m < FPR0+16:
		return fmt.Sprintf("f%d", uint8(m-FPR0))
	case m == T0:
		return "t0"
	case m == T1:
		return "t1"
	case m == FlagsReg:
		return "flags"
	}
	return fmt.Sprintf("mreg(%d)", uint8(m))
}

// Kind is a micro-op kind.
type Kind uint8

// Micro-op kinds. Arithmetic ops compute A0 <- A1 op A2; immediate forms use
// Imm instead of A2. Floating-point kinds interpret register bits as float64.
const (
	KInvalid Kind = iota

	KNop
	KMovI // A0 <- Imm
	KMov  // A0 <- A1
	KAdd
	KSub
	KMul
	KDiv  // SIGFPE on zero divisor
	KMod  // SIGFPE on zero divisor
	KAddI // A0 <- A1 + Imm
	KMulI // A0 <- A1 * Imm
	KAnd
	KOr
	KXor
	KShl
	KShr
	KNot // A0 <- ^A1

	KFAdd
	KFSub
	KFMul
	KFDiv
	KFNeg // A0 <- -A1
	KCvtIF
	KCvtFI

	KLd64 // A0 <- mem64[A1]
	KSt64 // mem64[A1] <- A2
	KLd8  // A0 <- zext mem8[A1]
	KSt8  // mem8[A1] <- low byte of A2

	KSetc  // flags <- sign(A1 - A2)
	KSetcI // flags <- sign(A1 - Imm)
	KFSetc // flags <- float compare of A1, A2

	KBr     // goto Imm; ends TB
	KBrCond // if flags satisfies Cond goto Imm else Imm2; ends TB
	KCall   // push Imm2 (return address); goto Imm; ends TB
	KRet    // pop return address; goto it; ends TB

	KSyscall // invoke syscall Imm; continues at Imm2
	KHlt     // terminate process
	KHelper  // invoke registered helper Helper (instrumentation)

	// Fused kinds produced by the peephole fusion pass (fuse.go), never by
	// expand. They collapse the two most common micro-op pairs into single
	// dispatches, like QEMU TCG's compare-and-branch and addressing-mode
	// folding.
	KCmpBr // fused KSetc+KBrCond: flags <- sign(A1-A2); branch; ends TB
	// KCmpBrI is the immediate form: flags <- sign(A1-Imm); if flags satisfies
	// Cond goto Imm2 else fall through to GuestPC2+InstrSize. The pair needs
	// three immediates and Op carries two, so the fall-through is recomputed
	// from the branch's guest address; fusion only fires when the two agree.
	KCmpBrI
	KLdD // fused KAddI+KLd64: A2 <- A1+Imm; A0 <- mem64[A1+Imm]
	KStD // fused KAddI+KSt64: A0 <- A1+Imm; mem64[A1+Imm] <- A2

	kindMax
)

var kindNames = [...]string{
	KInvalid: "invalid",
	KNop:     "nop",
	KMovI:    "movi",
	KMov:     "mov",
	KAdd:     "add",
	KSub:     "sub",
	KMul:     "mul",
	KDiv:     "div",
	KMod:     "mod",
	KAddI:    "addi",
	KMulI:    "muli",
	KAnd:     "and",
	KOr:      "or",
	KXor:     "xor",
	KShl:     "shl",
	KShr:     "shr",
	KNot:     "not",
	KFAdd:    "fadd",
	KFSub:    "fsub",
	KFMul:    "fmul",
	KFDiv:    "fdiv",
	KFNeg:    "fneg",
	KCvtIF:   "cvtif",
	KCvtFI:   "cvtfi",
	KLd64:    "ld64",
	KSt64:    "st64",
	KLd8:     "ld8",
	KSt8:     "st8",
	KSetc:    "setc",
	KSetcI:   "setci",
	KFSetc:   "fsetc",
	KBr:      "br",
	KBrCond:  "brcond",
	KCall:    "call",
	KRet:     "ret",
	KSyscall: "syscall",
	KHlt:     "hlt",
	KHelper:  "call_helper",
	KCmpBr:   "cmpbr",
	KCmpBrI:  "cmpbri",
	KLdD:     "ldd",
	KStD:     "std",
}

// String returns the micro-op kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Op is one translated micro-operation.
type Op struct {
	Kind Kind
	A0   MReg
	A1   MReg
	A2   MReg
	Imm  int64
	// Imm2 carries the fall-through or return address for control ops and
	// the continuation PC for syscalls.
	Imm2 int64
	// Cond is the guest conditional-branch opcode for KBrCond.
	Cond isa.Op
	// Helper identifies the registered helper for KHelper micro-ops.
	Helper int

	// GuestPC is the address of the guest instruction this op belongs to;
	// GuestOp is its opcode. First marks the first micro-op of a guest
	// instruction: the execution engine counts retired guest instructions
	// at First boundaries.
	GuestPC uint64
	GuestOp isa.Op
	First   bool

	// GuestPC2/GuestOp2 identify the second guest instruction covered by a
	// cross-instruction fused op (KCmpBr, KCmpBrI); the engine retires it
	// explicitly since its First boundary was folded away. Zero for every
	// other kind.
	GuestPC2 uint64
	GuestOp2 isa.Op
}

// String renders the micro-op for debugging and TB dumps.
func (o Op) String() string {
	switch o.Kind {
	case KMovI:
		return fmt.Sprintf("movi_i64 %s, %d", o.A0, o.Imm)
	case KAddI, KMulI:
		return fmt.Sprintf("%s_i64 %s, %s, %d", o.Kind, o.A0, o.A1, o.Imm)
	case KMov, KNot, KFNeg, KCvtIF, KCvtFI:
		return fmt.Sprintf("%s %s, %s", o.Kind, o.A0, o.A1)
	case KLd64, KLd8:
		return fmt.Sprintf("%s %s, [%s]", o.Kind, o.A0, o.A1)
	case KSt64, KSt8:
		return fmt.Sprintf("%s [%s], %s", o.Kind, o.A1, o.A2)
	case KSetc, KFSetc:
		return fmt.Sprintf("%s flags, %s, %s", o.Kind, o.A1, o.A2)
	case KSetcI:
		return fmt.Sprintf("setci flags, %s, %d", o.A1, o.Imm)
	case KBr:
		return fmt.Sprintf("br %#x", uint64(o.Imm))
	case KBrCond:
		return fmt.Sprintf("brcond(%s) %#x else %#x", o.Cond, uint64(o.Imm), uint64(o.Imm2))
	case KCmpBr:
		return fmt.Sprintf("cmpbr(%s) %s, %s -> %#x else %#x", o.Cond, o.A1, o.A2, uint64(o.Imm), uint64(o.Imm2))
	case KCmpBrI:
		return fmt.Sprintf("cmpbri(%s) %s, %d -> %#x else %#x", o.Cond, o.A1, o.Imm, uint64(o.Imm2), o.GuestPC2+isa.InstrSize)
	case KLdD:
		return fmt.Sprintf("ldd %s, [%s%+d] (addr %s)", o.A0, o.A1, o.Imm, o.A2)
	case KStD:
		return fmt.Sprintf("std [%s%+d], %s (addr %s)", o.A1, o.Imm, o.A2, o.A0)
	case KCall:
		return fmt.Sprintf("call %#x ret %#x", uint64(o.Imm), uint64(o.Imm2))
	case KSyscall:
		return fmt.Sprintf("syscall %d next %#x", o.Imm, uint64(o.Imm2))
	case KHelper:
		return fmt.Sprintf("call_helper #%d (%s @ %#x)", o.Helper, o.GuestOp, o.GuestPC)
	case KNop, KRet, KHlt:
		return o.Kind.String()
	default:
		return fmt.Sprintf("%s %s, %s, %s", o.Kind, o.A0, o.A1, o.A2)
	}
}

// TB is a translation block: the micro-ops for a straight-line run of guest
// instructions starting at PC.
//
// A TB is immutable once returned by a Translator: clean blocks are shared
// between machines through a BaseCache, so per-execution state (QEMU-style
// block chaining, generation checks) lives in per-machine tables inside the
// execution engine, never on the block itself.
type TB struct {
	PC       uint64
	Ops      []Op
	GuestLen int // number of guest instructions covered
	// NextPC is the fall-through continuation when the block does not end in
	// an explicit control transfer (e.g. it hit MaxTBInstrs).
	NextPC uint64
	// OpCounts is the block's guest-opcode histogram over First micro-ops
	// (fused-away second instructions excluded — the engine retires those
	// explicitly). A complete execution of the block retires exactly these
	// counts, letting the fast loop credit per-opcode statistics once per
	// block instead of once per instruction.
	OpCounts []OpCount
}

// OpCount is one entry of a TB's precomputed guest-opcode histogram.
type OpCount struct {
	Op isa.Op
	N  uint64
}

// countOps builds a TB's OpCounts histogram from its final op schedule.
func countOps(ops []Op) []OpCount {
	var counts [256]uint64
	for i := range ops {
		if ops[i].First {
			counts[ops[i].GuestOp]++
		}
	}
	var out []OpCount
	for op, n := range counts {
		if n != 0 {
			out = append(out, OpCount{Op: isa.Op(op), N: n})
		}
	}
	return out
}

// String dumps the block like QEMU's `-d op` log.
func (tb *TB) Dump() string {
	out := fmt.Sprintf("TB @ %#x (%d guest instrs)\n", tb.PC, tb.GuestLen)
	for _, op := range tb.Ops {
		marker := "   "
		if op.First {
			marker = " * "
		}
		out += fmt.Sprintf("%s%s\n", marker, op)
	}
	return out
}
