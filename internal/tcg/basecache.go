package tcg

import (
	"sync"
	"sync/atomic"

	"chaser/internal/isa"
)

// BaseCache is a shared, concurrency-safe cache of clean (uninstrumented)
// translation blocks for one program. It plays the role of QEMU's shared code
// cache for a fault-injection campaign: the guest program is identical across
// every rank of every run, so its clean translations are too, and paying for
// them once per campaign instead of once per machine removes ~100% of the
// redundant translation work.
//
// Blocks stored in a BaseCache are immutable after publication: the engine
// keeps its block-chaining state in per-machine tables (see internal/vm), so
// a published *TB is never written again and may be executed by any number of
// machines concurrently. Instrumented blocks never enter the base cache —
// they live in each Translator's private overlay, which is the only state
// AddHook/Flush invalidate.
//
// The cache fills lazily: any translator that produces a clean translation
// publishes it, so a campaign's golden run warms the cache for every
// injection run that follows.
type BaseCache struct {
	prog   *isa.Program
	noOpt  bool
	noFuse bool

	mu     sync.RWMutex
	blocks map[uint64]*TB

	hits   atomic.Uint64
	misses atomic.Uint64
}

// BaseStats is a snapshot of shared-cache activity.
type BaseStats struct {
	Hits   uint64 // lookups served from the shared cache
	Misses uint64 // lookups that fell through to translation
	Blocks uint64 // clean blocks currently published
}

// NewBaseCache creates an empty shared cache for prog.
func NewBaseCache(prog *isa.Program) *BaseCache {
	return &BaseCache{prog: prog, blocks: make(map[uint64]*TB)}
}

// SetOptimizer toggles the peephole optimizer for translations published
// into this cache (on by default). Only ablation benchmarks need this; it
// must be set before any translator uses the cache.
func (c *BaseCache) SetOptimizer(on bool) { c.noOpt = !on }

// SetFusion toggles the micro-op fusion pass for translations published into
// this cache (on by default); like SetOptimizer it must be set before any
// translator uses the cache, so every sharer agrees on the block shape.
func (c *BaseCache) SetFusion(on bool) { c.noFuse = !on }

// Prog returns the program this cache translates.
func (c *BaseCache) Prog() *isa.Program { return c.prog }

// Len returns the number of published blocks.
func (c *BaseCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.blocks)
}

// Stats returns a snapshot of cache activity.
func (c *BaseCache) Stats() BaseStats {
	return BaseStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Blocks: uint64(c.Len()),
	}
}

// lookup returns the published block at pc, if any, counting a hit or miss.
func (c *BaseCache) lookup(pc uint64) (*TB, bool) {
	c.mu.RLock()
	tb, ok := c.blocks[pc]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return tb, ok
}

// insert publishes a clean translation and returns the canonical block for
// pc: the first writer wins, so concurrent machines that raced on the same
// miss all converge on one shared *TB.
func (c *BaseCache) insert(pc uint64, tb *TB) *TB {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.blocks[pc]; ok {
		return prev
	}
	c.blocks[pc] = tb
	return tb
}
