// Package asm implements a two-pass text assembler for the guest ISA. It is
// used by tests, the guestasm tool, and small examples; larger guest
// applications are authored with the internal/lang compiler.
//
// Source syntax:
//
//	; line comment (also #)
//	.entry main            ; entry label (default: first code label)
//	.data                  ; switch to data segment
//	vec:    .quad 1, 2, 3  ; 64-bit little-endian words
//	pi:     .double 3.14   ; IEEE-754 float64
//	msg:    .ascii "hi"    ; raw bytes
//	buf:    .zero 64       ; zero fill
//	.text                  ; switch to code segment (default)
//	main:
//	        movi r1, 10
//	        fmovi f0, 1.5
//	        ld r2, [r1+8]
//	        st [r1+8], r2
//	        movi r3, vec   ; data labels resolve to absolute addresses
//	        jne main
//	        syscall exit   ; syscall names or raw numbers
package asm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"chaser/internal/isa"
)

// SyntaxError reports an assembly error with its source line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

type fixup struct {
	instrIdx int
	label    string
	line     int
}

type assembler struct {
	code      []isa.Instr
	data      []byte
	labels    map[string]uint64
	fixups    []fixup
	entryName string
	inData    bool
	firstCode string
}

// Assemble translates assembler source into a loadable program.
func Assemble(name, src string) (*isa.Program, error) {
	a := &assembler{labels: make(map[string]uint64)}
	for lineNo, raw := range strings.Split(src, "\n") {
		if err := a.line(lineNo+1, raw); err != nil {
			return nil, err
		}
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	entry := a.entryName
	if entry == "" {
		entry = a.firstCode
	}
	if entry == "" {
		return nil, &SyntaxError{Line: 0, Msg: "no code labels defined"}
	}
	addr, ok := a.labels[entry]
	if !ok {
		return nil, &SyntaxError{Line: 0, Msg: fmt.Sprintf("entry label %q undefined", entry)}
	}
	p := &isa.Program{Name: name, Entry: addr, Code: a.code, Data: a.data}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (a *assembler) line(n int, raw string) error {
	s := raw
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		// Keep comment markers inside string literals.
		if q := strings.Index(s, `"`); q < 0 || q > i {
			s = s[:i]
		}
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	// Labels, possibly followed by an instruction/directive on the same line.
	for {
		i := strings.Index(s, ":")
		if i < 0 || strings.ContainsAny(s[:i], " \t\".,[") {
			break
		}
		label := s[:i]
		if _, dup := a.labels[label]; dup {
			return &SyntaxError{Line: n, Msg: fmt.Sprintf("duplicate label %q", label)}
		}
		if a.inData {
			a.labels[label] = isa.DataBase + uint64(len(a.data))
		} else {
			a.labels[label] = isa.CodeBase + uint64(len(a.code))*isa.InstrSize
			if a.firstCode == "" {
				a.firstCode = label
			}
		}
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(n, s)
	}
	return a.instruction(n, s)
}

func (a *assembler) directive(n int, s string) error {
	word, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	switch word {
	case ".text":
		a.inData = false
	case ".data":
		a.inData = true
	case ".entry":
		if rest == "" {
			return &SyntaxError{Line: n, Msg: ".entry needs a label"}
		}
		a.entryName = rest
	case ".quad":
		for _, f := range splitOperands(rest) {
			v, err := parseInt(f)
			if err != nil {
				return &SyntaxError{Line: n, Msg: fmt.Sprintf("bad .quad value %q", f)}
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			a.data = append(a.data, b[:]...)
		}
	case ".double":
		for _, f := range splitOperands(rest) {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return &SyntaxError{Line: n, Msg: fmt.Sprintf("bad .double value %q", f)}
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			a.data = append(a.data, b[:]...)
		}
	case ".ascii":
		str, err := strconv.Unquote(rest)
		if err != nil {
			return &SyntaxError{Line: n, Msg: fmt.Sprintf("bad .ascii string %s", rest)}
		}
		a.data = append(a.data, str...)
	case ".zero":
		v, err := parseInt(rest)
		if err != nil || v < 0 {
			return &SyntaxError{Line: n, Msg: fmt.Sprintf("bad .zero size %q", rest)}
		}
		a.data = append(a.data, make([]byte, v)...)
	default:
		return &SyntaxError{Line: n, Msg: fmt.Sprintf("unknown directive %s", word)}
	}
	return nil
}

func (a *assembler) instruction(n int, s string) error {
	mnem, rest, _ := strings.Cut(s, " ")
	op := isa.OpByName(mnem)
	if op == isa.OpInvalid {
		return &SyntaxError{Line: n, Msg: fmt.Sprintf("unknown mnemonic %q", mnem)}
	}
	ops := splitOperands(strings.TrimSpace(rest))
	ins, err := a.encodeOperands(n, op, ops)
	if err != nil {
		return err
	}
	a.code = append(a.code, ins)
	return nil
}

func (a *assembler) encodeOperands(n int, op isa.Op, ops []string) (isa.Instr, error) {
	ins := isa.Instr{Op: op}
	fail := func(format string, args ...any) (isa.Instr, error) {
		return isa.Instr{}, &SyntaxError{Line: n, Msg: fmt.Sprintf(format, args...)}
	}
	need := func(k int) error {
		if len(ops) != k {
			return &SyntaxError{Line: n, Msg: fmt.Sprintf("%s takes %d operands, got %d", op, k, len(ops))}
		}
		return nil
	}
	reg := func(s string, float bool) (isa.Reg, error) {
		return parseReg(s, float)
	}
	switch op {
	case isa.OpNop, isa.OpHlt, isa.OpRet:
		if err := need(0); err != nil {
			return isa.Instr{}, err
		}
	case isa.OpMovI:
		if err := need(2); err != nil {
			return isa.Instr{}, err
		}
		rd, err := reg(ops[0], false)
		if err != nil {
			return fail("%v", err)
		}
		ins.Rd = rd
		if v, err := parseInt(ops[1]); err == nil {
			ins.Imm = v
		} else {
			a.fixups = append(a.fixups, fixup{len(a.code), ops[1], n})
		}
	case isa.OpFMovI:
		if err := need(2); err != nil {
			return isa.Instr{}, err
		}
		rd, err := reg(ops[0], true)
		if err != nil {
			return fail("%v", err)
		}
		v, err := strconv.ParseFloat(ops[1], 64)
		if err != nil {
			return fail("bad float immediate %q", ops[1])
		}
		ins.Rd = rd
		ins.Imm = int64(math.Float64bits(v))
	case isa.OpMov, isa.OpNot, isa.OpFMov, isa.OpFNeg, isa.OpCvtIF, isa.OpCvtFI:
		if err := need(2); err != nil {
			return isa.Instr{}, err
		}
		dFloat := op == isa.OpFMov || op == isa.OpFNeg || op == isa.OpCvtIF
		sFloat := op == isa.OpFMov || op == isa.OpFNeg || op == isa.OpCvtFI
		rd, err := reg(ops[0], dFloat)
		if err != nil {
			return fail("%v", err)
		}
		rs, err := reg(ops[1], sFloat)
		if err != nil {
			return fail("%v", err)
		}
		ins.Rd, ins.Rs1 = rd, rs
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpMod,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr,
		isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv:
		if err := need(3); err != nil {
			return isa.Instr{}, err
		}
		fl := op.IsFloat()
		rd, err := reg(ops[0], fl)
		if err != nil {
			return fail("%v", err)
		}
		r1, err := reg(ops[1], fl)
		if err != nil {
			return fail("%v", err)
		}
		r2, err := reg(ops[2], fl)
		if err != nil {
			return fail("%v", err)
		}
		ins.Rd, ins.Rs1, ins.Rs2 = rd, r1, r2
	case isa.OpAddI, isa.OpMulI:
		if err := need(3); err != nil {
			return isa.Instr{}, err
		}
		rd, err := reg(ops[0], false)
		if err != nil {
			return fail("%v", err)
		}
		r1, err := reg(ops[1], false)
		if err != nil {
			return fail("%v", err)
		}
		ins.Rd, ins.Rs1 = rd, r1
		if v, err := parseInt(ops[2]); err == nil {
			ins.Imm = v
		} else {
			a.fixups = append(a.fixups, fixup{len(a.code), ops[2], n})
		}
	case isa.OpLd, isa.OpLdB, isa.OpFLd:
		if err := need(2); err != nil {
			return isa.Instr{}, err
		}
		rd, err := reg(ops[0], op == isa.OpFLd)
		if err != nil {
			return fail("%v", err)
		}
		base, disp, err := parseMem(ops[1])
		if err != nil {
			return fail("%v", err)
		}
		ins.Rd, ins.Rs1, ins.Imm = rd, base, disp
	case isa.OpSt, isa.OpStB, isa.OpFSt:
		if err := need(2); err != nil {
			return isa.Instr{}, err
		}
		base, disp, err := parseMem(ops[0])
		if err != nil {
			return fail("%v", err)
		}
		rs, err := reg(ops[1], op == isa.OpFSt)
		if err != nil {
			return fail("%v", err)
		}
		ins.Rs1, ins.Rs2, ins.Imm = base, rs, disp
	case isa.OpCmp, isa.OpFCmp:
		if err := need(2); err != nil {
			return isa.Instr{}, err
		}
		fl := op == isa.OpFCmp
		r1, err := reg(ops[0], fl)
		if err != nil {
			return fail("%v", err)
		}
		r2, err := reg(ops[1], fl)
		if err != nil {
			return fail("%v", err)
		}
		ins.Rs1, ins.Rs2 = r1, r2
	case isa.OpCmpI:
		if err := need(2); err != nil {
			return isa.Instr{}, err
		}
		r1, err := reg(ops[0], false)
		if err != nil {
			return fail("%v", err)
		}
		v, err := parseInt(ops[1])
		if err != nil {
			return fail("bad immediate %q", ops[1])
		}
		ins.Rs1, ins.Imm = r1, v
	case isa.OpJmp, isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge, isa.OpCall:
		if err := need(1); err != nil {
			return isa.Instr{}, err
		}
		if v, err := parseInt(ops[0]); err == nil {
			ins.Imm = v
		} else {
			a.fixups = append(a.fixups, fixup{len(a.code), ops[0], n})
		}
	case isa.OpPush, isa.OpFPush:
		if err := need(1); err != nil {
			return isa.Instr{}, err
		}
		r, err := reg(ops[0], op == isa.OpFPush)
		if err != nil {
			return fail("%v", err)
		}
		ins.Rs1 = r
	case isa.OpPop, isa.OpFPop:
		if err := need(1); err != nil {
			return isa.Instr{}, err
		}
		r, err := reg(ops[0], op == isa.OpFPop)
		if err != nil {
			return fail("%v", err)
		}
		ins.Rd = r
	case isa.OpSyscall:
		if err := need(1); err != nil {
			return isa.Instr{}, err
		}
		if v, err := parseInt(ops[0]); err == nil {
			ins.Imm = v
		} else if sys := sysByName(ops[0]); sys.Valid() {
			ins.Imm = int64(sys)
		} else {
			return fail("unknown syscall %q", ops[0])
		}
	default:
		return fail("unsupported opcode %v", op)
	}
	return ins, nil
}

func (a *assembler) resolve() error {
	for _, f := range a.fixups {
		addr, ok := a.labels[f.label]
		if !ok {
			return &SyntaxError{Line: f.line, Msg: fmt.Sprintf("undefined label %q", f.label)}
		}
		a.code[f.instrIdx].Imm = int64(addr)
	}
	return nil
}

func splitOperands(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 64)
	if err != nil {
		return 0, err
	}
	out := int64(v)
	if neg {
		out = -out
	}
	return out, nil
}

func parseReg(s string, float bool) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "sp":
		return isa.SP, nil
	case "fp":
		return isa.FP, nil
	}
	prefix := "r"
	if float {
		prefix = "f"
	}
	if !strings.HasPrefix(s, prefix) {
		return 0, fmt.Errorf("expected %s-register, got %q", prefix, s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

// parseMem parses a memory operand of the form [rN], [rN+imm], or [rN-imm].
func parseMem(s string) (isa.Reg, int64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("expected memory operand [reg+disp], got %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	regPart, dispPart := inner, ""
	if sep > 0 {
		regPart, dispPart = inner[:sep], inner[sep:]
	}
	base, err := parseReg(regPart, false)
	if err != nil {
		return 0, 0, err
	}
	var disp int64
	if dispPart != "" {
		disp, err = parseInt(dispPart)
		if err != nil {
			return 0, 0, fmt.Errorf("bad displacement %q", dispPart)
		}
	}
	return base, disp, nil
}

func sysByName(name string) isa.Sys {
	for s := isa.Sys(1); s.Valid(); s++ {
		if s.String() == name {
			return s
		}
	}
	return 0
}
