package asm

import (
	"errors"
	"math"
	"strings"
	"testing"

	"chaser/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestAssembleBasic(t *testing.T) {
	p := mustAssemble(t, `
; a tiny program
main:
    movi r1, 42
    movi r2, 0x10
    add r3, r1, r2
    hlt
`)
	if p.Entry != isa.CodeBase {
		t.Errorf("entry = %#x, want %#x", p.Entry, isa.CodeBase)
	}
	want := []isa.Instr{
		{Op: isa.OpMovI, Rd: isa.R1, Imm: 42},
		{Op: isa.OpMovI, Rd: isa.R2, Imm: 16},
		{Op: isa.OpAdd, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.OpHlt},
	}
	if len(p.Code) != len(want) {
		t.Fatalf("code len = %d, want %d", len(p.Code), len(want))
	}
	for i := range want {
		if p.Code[i] != want[i] {
			t.Errorf("instr %d = %+v, want %+v", i, p.Code[i], want[i])
		}
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
.entry start
start:
    movi r1, 3
loop:
    addi r1, r1, -1
    cmpi r1, 0
    jne loop
    jmp done
done:
    hlt
`)
	loopAddr := isa.CodeBase + 1*isa.InstrSize
	doneAddr := isa.CodeBase + 5*isa.InstrSize
	if got := uint64(p.Code[3].Imm); got != loopAddr {
		t.Errorf("jne target = %#x, want %#x", got, loopAddr)
	}
	if got := uint64(p.Code[4].Imm); got != doneAddr {
		t.Errorf("jmp target = %#x, want %#x", got, doneAddr)
	}
}

func TestAssembleData(t *testing.T) {
	p := mustAssemble(t, `
.data
vec: .quad 1, 2, -3
pi:  .double 3.5
msg: .ascii "hi\n"
buf: .zero 4
.text
main:
    movi r1, vec
    movi r2, pi
    hlt
`)
	if len(p.Data) != 24+8+3+4 {
		t.Fatalf("data len = %d", len(p.Data))
	}
	if got := uint64(p.Code[0].Imm); got != isa.DataBase {
		t.Errorf("vec addr = %#x, want %#x", got, isa.DataBase)
	}
	if got := uint64(p.Code[1].Imm); got != isa.DataBase+24 {
		t.Errorf("pi addr = %#x, want %#x", got, isa.DataBase+24)
	}
	// -3 little-endian at offset 16.
	if p.Data[16] != 0xfd || p.Data[23] != 0xff {
		t.Errorf("quad -3 encoded wrong: % x", p.Data[16:24])
	}
	if got := math.Float64frombits(leU64(p.Data[24:32])); got != 3.5 {
		t.Errorf("double = %v, want 3.5", got)
	}
	if string(p.Data[32:35]) != "hi\n" {
		t.Errorf("ascii = %q", p.Data[32:35])
	}
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func TestAssembleMemoryOperands(t *testing.T) {
	p := mustAssemble(t, `
main:
    ld r1, [r2+8]
    ld r1, [r2-8]
    ld r1, [r2]
    st [sp+16], r3
    fld f1, [fp-24]
    fst [r4], f2
    ldb r5, [r6+1]
    stb [r6+1], r5
    hlt
`)
	tests := []struct {
		idx  int
		want isa.Instr
	}{
		{0, isa.Instr{Op: isa.OpLd, Rd: isa.R1, Rs1: isa.R2, Imm: 8}},
		{1, isa.Instr{Op: isa.OpLd, Rd: isa.R1, Rs1: isa.R2, Imm: -8}},
		{2, isa.Instr{Op: isa.OpLd, Rd: isa.R1, Rs1: isa.R2}},
		{3, isa.Instr{Op: isa.OpSt, Rs1: isa.SP, Rs2: isa.R3, Imm: 16}},
		{4, isa.Instr{Op: isa.OpFLd, Rd: isa.F1, Rs1: isa.FP, Imm: -24}},
		{5, isa.Instr{Op: isa.OpFSt, Rs1: isa.R4, Rs2: isa.F2}},
		{6, isa.Instr{Op: isa.OpLdB, Rd: isa.R5, Rs1: isa.R6, Imm: 1}},
		{7, isa.Instr{Op: isa.OpStB, Rs1: isa.R6, Rs2: isa.R5, Imm: 1}},
	}
	for _, tt := range tests {
		if p.Code[tt.idx] != tt.want {
			t.Errorf("instr %d = %+v, want %+v", tt.idx, p.Code[tt.idx], tt.want)
		}
	}
}

func TestAssembleFloatOps(t *testing.T) {
	p := mustAssemble(t, `
main:
    fmovi f0, 2.5
    fmov f1, f0
    fadd f2, f0, f1
    fneg f3, f2
    cvtif f4, r1
    cvtfi r2, f4
    fcmp f0, f1
    fpush f2
    fpop f3
    hlt
`)
	if got := math.Float64frombits(uint64(p.Code[0].Imm)); got != 2.5 {
		t.Errorf("fmovi imm = %v, want 2.5", got)
	}
	if p.Code[2] != (isa.Instr{Op: isa.OpFAdd, Rd: isa.F2, Rs1: isa.F0, Rs2: isa.F1}) {
		t.Errorf("fadd = %+v", p.Code[2])
	}
	if p.Code[4] != (isa.Instr{Op: isa.OpCvtIF, Rd: isa.F4, Rs1: isa.R1}) {
		t.Errorf("cvtif = %+v", p.Code[4])
	}
	if p.Code[5] != (isa.Instr{Op: isa.OpCvtFI, Rd: isa.R2, Rs1: isa.F4}) {
		t.Errorf("cvtfi = %+v", p.Code[5])
	}
}

func TestAssembleSyscallNames(t *testing.T) {
	p := mustAssemble(t, `
main:
    syscall exit
    syscall mpi_send
    syscall 3
`)
	if isa.Sys(p.Code[0].Imm) != isa.SysExit {
		t.Errorf("syscall exit = %d", p.Code[0].Imm)
	}
	if isa.Sys(p.Code[1].Imm) != isa.SysMPISend {
		t.Errorf("syscall mpi_send = %d", p.Code[1].Imm)
	}
	if isa.Sys(p.Code[2].Imm) != isa.SysPrintFloat {
		t.Errorf("syscall 3 = %d", p.Code[2].Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "main:\n bogus r1, r2\n", "unknown mnemonic"},
		{"bad register", "main:\n mov r1, r99\n", "bad register"},
		{"wrong float reg", "main:\n fadd r1, f2, f3\n", "expected f-register"},
		{"wrong operand count", "main:\n add r1, r2\n", "takes 3 operands"},
		{"undefined label", "main:\n jmp nowhere\n", "undefined label"},
		{"duplicate label", "main:\nmain:\n hlt\n", "duplicate label"},
		{"bad directive", ".bogus 1\nmain:\n hlt\n", "unknown directive"},
		{"bad quad", ".data\nx: .quad zap\n.text\nmain:\n hlt\n", "bad .quad"},
		{"bad double", ".data\nx: .double zap\n.text\nmain:\n hlt\n", "bad .double"},
		{"bad zero", ".data\nx: .zero -1\n.text\nmain:\n hlt\n", "bad .zero"},
		{"bad ascii", ".data\nx: .ascii hi\n.text\nmain:\n hlt\n", "bad .ascii"},
		{"bad mem", "main:\n ld r1, r2\n", "expected memory operand"},
		{"unknown syscall", "main:\n syscall zap\n", "unknown syscall"},
		{"no code", ".data\nx: .quad 1\n", "no code labels"},
		{"bad entry", ".entry zap\nmain:\n hlt\n", `entry label "zap" undefined`},
		{"entry no arg", ".entry\nmain:\n hlt\n", ".entry needs a label"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble("t", tt.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q missing %q", err, tt.wantSub)
			}
		})
	}
}

func TestSyntaxErrorLineNumbers(t *testing.T) {
	_, err := Assemble("t", "main:\n movi r1, 1\n bogus\n")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *SyntaxError", err)
	}
	if se.Line != 3 {
		t.Errorf("line = %d, want 3", se.Line)
	}
}

func TestAssembleComments(t *testing.T) {
	p := mustAssemble(t, `
# hash comment
main:            ; label comment
    movi r1, 1   ; trailing
    hlt
`)
	if len(p.Code) != 2 {
		t.Fatalf("code len = %d, want 2", len(p.Code))
	}
}

// Round trip: disassembled output of an assembled program reassembles to the
// identical instruction stream (for ops whose String form is re-parseable).
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := `
main:
    movi r1, 100
    addi r2, r1, 8
    muli r3, r2, 2
    and r4, r1, r2
    or r4, r1, r2
    xor r4, r1, r2
    shl r4, r1, r2
    shr r4, r1, r2
    not r5, r4
    mod r6, r1, r2
    div r6, r1, r2
    sub r6, r1, r2
    mul r6, r1, r2
    push r6
    pop r6
    nop
    ret
`
	p1 := mustAssemble(t, src)
	var rebuilt []string
	for _, ins := range p1.Code {
		rebuilt = append(rebuilt, ins.String())
	}
	p2 := mustAssemble(t, "main:\n"+strings.Join(rebuilt, "\n")+"\n")
	if len(p1.Code) != len(p2.Code) {
		t.Fatalf("lengths differ: %d vs %d", len(p1.Code), len(p2.Code))
	}
	for i := range p1.Code {
		if p1.Code[i] != p2.Code[i] {
			t.Errorf("instr %d: %+v vs %+v", i, p1.Code[i], p2.Code[i])
		}
	}
}
