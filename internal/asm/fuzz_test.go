package asm

import (
	"testing"

	"chaser/internal/isa"
)

// FuzzAssemble checks the assembler never panics and that anything it
// accepts round-trips through the encoder and validates.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"main:\n hlt\n",
		"main:\n movi r1, 42\n add r2, r1, r1\n hlt\n",
		".data\nv: .quad 1,2\n.text\nmain:\n movi r1, v\n ld r2, [r1+8]\n hlt\n",
		".entry start\nstart:\n fmovi f0, 1.5\n fadd f1, f0, f0\n ret\n",
		"main:\n syscall exit\n",
		"loop:\n cmpi r1, 0\n jne loop\n hlt\n",
		"main:\n push r1\n pop r2\n fpush f1\n fpop f2\n hlt\n",
		"; comment\nmain: hlt\n",
		".data\ns: .ascii \"hi\\n\"\n.text\nmain:\n hlt\n",
		"main:\n ld r1, [sp-8]\n st [fp+16], r2\n hlt\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble("fuzz", src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted programs must encode/decode cleanly and validate.
		img := isa.EncodeProgram(prog.Code)
		back, err := isa.DecodeProgram(img)
		if err != nil {
			t.Fatalf("accepted program fails decode: %v", err)
		}
		if len(back) != len(prog.Code) {
			t.Fatalf("round trip length mismatch")
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("accepted program fails validation: %v", err)
		}
	})
}
