module chaser

go 1.22
