// Differential proof of the dual-loop engine at system level: every example
// guest program, run end-to-end through the full Chaser stack, must produce
// identical observable results whether blocks execute on the taint-free fast
// loop (default) or are forced through the full taint-aware loop
// (NoFastPath). Three scenarios per program bracket the fast path's
// activation range: no spec at all (taint off, fast loop only), tracing armed
// but the fault never firing (taint on, shadow empty — still fast), and a
// mid-run injection (fast until the fault lands, full after).
package chaser

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"chaser/internal/core"
	"chaser/internal/isa"
	"chaser/internal/lang"
	"chaser/internal/vm"
)

type guestCase struct {
	file      string
	worldSize int
	ops       []isa.Op
	// injectN is the dynamic occurrence of a targeted op the mid-run
	// scenario injects at, chosen so the fault's taint survives past the
	// injection block (for ring it also crosses ranks through the hub,
	// pulling every rank off the fast path).
	injectN uint64
}

var guestCases = []guestCase{
	{"pi.gl", 1, []isa.Op{isa.OpFAdd, isa.OpFDiv}, 40},
	{"ring.gl", 4, []isa.Op{isa.OpLd, isa.OpSt}, 30},
}

func loadGuest(t *testing.T, file string) *isa.Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("examples", "guest_programs", file))
	if err != nil {
		t.Fatal(err)
	}
	name := strings.TrimSuffix(file, ".gl")
	prog, err := lang.ParseAndCompile(name, string(src))
	if err != nil {
		t.Fatalf("compile %s: %v", file, err)
	}
	return prog
}

// comparable projects a RunResult onto its deterministic, loop-independent
// observables. FastPathTBs is removed — it is the one counter defined to
// differ between the two modes. Trace events are reduced to per-rank totals:
// cross-rank collection order depends on goroutine scheduling, the per-rank
// counts do not.
func comparable(res *core.RunResult, worldSize int) map[string]any {
	counters := make([]vm.Counters, len(res.Counters))
	copy(counters, res.Counters)
	for i := range counters {
		counters[i].FastPathTBs = 0
	}
	out := map[string]any{
		"terms":    res.Terms,
		"outputs":  res.Outputs,
		"consoles": res.Consoles,
		"counters": counters,
		"records":  res.Records,
	}
	if res.Trace != nil {
		reads := make([]uint64, worldSize)
		writes := make([]uint64, worldSize)
		for r := 0; r < worldSize; r++ {
			reads[r] = res.Trace.Reads(r)
			writes[r] = res.Trace.Writes(r)
		}
		out["trace_reads"] = reads
		out["trace_writes"] = writes
		out["trace_events"] = len(res.Trace.Events())
		out["trace_propagated"] = res.Trace.Propagated()
	}
	return out
}

func TestFastFullDifferentialGuestPrograms(t *testing.T) {
	scenarios := []struct {
		name string
		spec func(gc guestCase, target string) *core.Spec
	}{
		{"no-spec", func(gc guestCase, target string) *core.Spec {
			return nil
		}},
		{"trace-never-fires", func(gc guestCase, target string) *core.Spec {
			return &core.Spec{
				Target: target, Ops: gc.ops, TargetRank: 0,
				Cond: core.Deterministic{N: 1 << 62},
				Bits: 1, Seed: 11, Trace: true,
			}
		}},
		{"mid-run-injection", func(gc guestCase, target string) *core.Spec {
			return &core.Spec{
				Target: target, Ops: gc.ops, TargetRank: 0,
				Cond: core.Deterministic{N: gc.injectN},
				Bits: 2, Seed: 11, Trace: true,
			}
		}},
	}
	for _, gc := range guestCases {
		prog := loadGuest(t, gc.file)
		for _, sc := range scenarios {
			t.Run(fmt.Sprintf("%s/%s", gc.file, sc.name), func(t *testing.T) {
				runMode := func(noFast bool) *core.RunResult {
					res, err := core.Run(core.RunConfig{
						Prog:       prog,
						WorldSize:  gc.worldSize,
						Spec:       sc.spec(gc, prog.Name),
						NoFastPath: noFast,
					})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				fast := runMode(false)
				full := runMode(true)

				var fastTBs, totalTBs uint64
				for _, c := range fast.Counters {
					fastTBs += c.FastPathTBs
					totalTBs += c.TBsExecuted
				}
				if fastTBs == 0 {
					t.Fatal("default mode never took the fast path; differential is vacuous")
				}
				if sc.name == "mid-run-injection" {
					if !fast.Injected() {
						t.Fatal("mid-run scenario injected nothing")
					}
					if fastTBs >= totalTBs {
						t.Error("injection run never handed off to the full loop")
					}
				}
				for _, c := range full.Counters {
					if c.FastPathTBs != 0 {
						t.Fatalf("NoFastPath run counted %d fast-path TBs", c.FastPathTBs)
					}
				}
				a, b := comparable(fast, gc.worldSize), comparable(full, gc.worldSize)
				if !reflect.DeepEqual(a, b) {
					for k := range a {
						if !reflect.DeepEqual(a[k], b[k]) {
							t.Errorf("%s diverged:\nfast: %+v\nfull: %+v", k, a[k], b[k])
						}
					}
				}
			})
		}
	}
}
