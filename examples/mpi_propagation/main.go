// MPI propagation: inject a fault into the master rank of the MPI
// matrix-vector product and trace how the error travels — through the
// master's memory, into an MPI message, through the TaintHub, and onward
// inside a worker rank (the paper's Fig. 1 scenario, observed live).
//
//	go run ./examples/mpi_propagation
//
// The example runs the TaintHub as a real TCP service on localhost to show
// the cluster deployment; swap Dial for tainthub.NewLocal() for in-process
// coordination.
package main

import (
	"fmt"
	"log"

	"chaser/internal/apps"
	"chaser/internal/core"
	"chaser/internal/isa"
	"chaser/internal/tainthub"
)

func main() {
	// Start a TaintHub server (the head-node service) and connect to it.
	srv, err := tainthub.NewServer(tainthub.NewLocal(), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	hub, err := tainthub.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer hub.Close()
	fmt.Printf("tainthub serving on %s\n", srv.Addr())

	app, err := apps.ByName("matvec")
	if err != nil {
		log.Fatal(err)
	}

	// Corrupt a floating-point value the master stores into the matrix, so
	// the taint rides a row block into a worker.
	res, err := core.Run(core.RunConfig{
		Prog:      app.Prog,
		WorldSize: app.WorldSize,
		Hub:       hub,
		Spec: &core.Spec{
			Target:     app.Name,
			Ops:        []isa.Op{isa.OpFSt}, // the matrix-element stores
			TargetRank: 0,
			Cond:       core.Deterministic{N: 100},
			Bits:       2,
			Seed:       7,
			Trace:      true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, rec := range res.Records {
		fmt.Printf("injected on master: %s\n", rec)
	}
	for r, term := range res.Terms {
		fmt.Printf("rank %d: %s\n", r, term)
	}

	fmt.Printf("\npropagation summary:\n")
	for rank := 0; rank < app.WorldSize; rank++ {
		fmt.Printf("  rank %d: %d tainted reads, %d tainted writes\n",
			rank, res.Trace.Reads(rank), res.Trace.Writes(rank))
	}
	for _, cr := range res.Trace.CrossRank() {
		kind := "payload"
		if cr.Meta {
			kind = "metadata"
		}
		fmt.Printf("  tainted message (%s): rank %d -> rank %d, tag %d, %d tainted bytes\n",
			kind, cr.Src, cr.Dst, cr.Tag, cr.TaintedBytes)
	}
	st := hub.Stats()
	fmt.Printf("  hub: %d published, %d polls, %d hits\n", st.Published, st.Polls, st.Hits)

	// A few raw propagation-log entries, with the fields the paper records
	// (eip, virtual/physical address, taint mask, current value).
	evs := res.Trace.Events()
	fmt.Printf("\nfirst propagation-log entries (of %d):\n", len(evs))
	for i, ev := range evs {
		if i >= 5 {
			break
		}
		op := "read"
		if ev.Write {
			op = "write"
		}
		fmt.Printf("  rank %d %-5s eip=%#x vaddr=%#x paddr=%#x mask=%#x value=%#x\n",
			ev.Rank, op, ev.EIP, ev.VAddr, ev.PAddr, ev.Mask, ev.Value)
	}
}
