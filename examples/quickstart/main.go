// Quickstart: inject a single bit flip into a floating-point instruction of
// the k-means kernel and see what happens to the program.
//
//	go run ./examples/quickstart
//
// The example walks the full Chaser pipeline in a few lines: pick an
// application, arm a deterministic fault model, run, and inspect the
// outcome — the same flow the cmd/chaser binary drives from flags.
package main

import (
	"bytes"
	"fmt"
	"log"

	"chaser/internal/apps"
	"chaser/internal/core"
)

func main() {
	app, err := apps.ByName("kmeans")
	if err != nil {
		log.Fatal(err)
	}

	// Golden (fault-free) reference run.
	golden, err := core.Golden(app.Prog, app.WorldSize, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: %s, %d instructions\n",
		golden.Terms[0], golden.Counters[0].Instructions)

	// Inject one bit flip into the 2000th floating-point operation.
	res, err := core.Run(core.RunConfig{
		Prog:      app.Prog,
		WorldSize: app.WorldSize,
		Spec: &core.Spec{
			Target: app.Name,
			Ops:    app.DefaultOps,
			Cond:   core.Deterministic{N: 2000},
			Bits:   1,
			Seed:   42,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range res.Records {
		fmt.Printf("injected: %s\n", rec)
	}
	fmt.Printf("faulty run: %s\n", res.Terms[0])

	switch {
	case res.Terms[0].Abnormal():
		fmt.Println("outcome: terminated (the fault crashed the program)")
	case bytes.Equal(res.Outputs[0], golden.Outputs[0]):
		fmt.Println("outcome: benign (output identical to golden run)")
	default:
		fmt.Println("outcome: silent data corruption (output differs from golden run)")
	}
}
