// Custom injector: build a new fault model against Chaser's exported
// interfaces — the paper's Table II flexibility claim, live.
//
//	go run ./examples/custom_injector
//
// The injector below implements a "stuck-at-zero exponent" model: when the
// condition fires on a floating-point instruction, it clears the exponent
// bits of one operand, crushing the value toward zero — a fault model none
// of the built-ins provide, written in ~40 lines.
package main

import (
	"fmt"
	"log"
	"math"

	"chaser/internal/apps"
	"chaser/internal/core"
	"chaser/internal/isa"
	"chaser/internal/tcg"
)

// exponentCrusher clears the 11 exponent bits of a floating-point operand.
type exponentCrusher struct{}

const exponentMask = uint64(0x7ff) << 52

func (exponentCrusher) Inject(ctx *core.Context) (core.InjectionRecord, error) {
	if !ctx.Instr.Op.IsFloat() {
		return core.InjectionRecord{}, core.ErrDeclined
	}
	reg := tcg.FPR(ctx.Instr.Rs1)
	before := ctx.Machine.Reg(reg)
	after := before &^ exponentMask
	ctx.Machine.SetReg(reg, after)
	if ctx.Trace {
		sh := ctx.Machine.Shadow
		sh.SetRegMask(reg, sh.RegMask(reg)|exponentMask)
	}
	return core.InjectionRecord{
		Rank:      ctx.Machine.Rank,
		PC:        ctx.Op.GuestPC,
		GuestOp:   ctx.Instr.Op,
		GuestOpS:  ctx.Instr.Op.String(),
		ExecCount: ctx.ExecCount,
		Target:    "reg " + reg.String() + " (exponent crushed)",
		Mask:      exponentMask,
		Before:    before,
		After:     after,
	}, nil
}

func main() {
	app, err := apps.ByName("lud")
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Run(core.RunConfig{
		Prog:      app.Prog,
		WorldSize: app.WorldSize,
		Spec: &core.Spec{
			Target: app.Name,
			Ops:    []isa.Op{isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv},
			Cond:   core.Deterministic{N: 3000},
			Inj:    exponentCrusher{},
			Seed:   1,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Injected() {
		log.Fatal("fault never fired")
	}
	rec := res.Records[0]
	fmt.Printf("injected: %s\n", rec)
	fmt.Printf("  value before: %v\n", math.Float64frombits(rec.Before))
	fmt.Printf("  value after:  %v\n", math.Float64frombits(rec.After))
	fmt.Printf("run ended: %s\n", res.Terms[0])
}
