// Distributed campaign: the paper's cluster deployment in miniature. A
// TaintHub server runs as the "head node" service; a parallel fault-
// injection campaign shares it over TCP, with every run isolated in its
// own hub namespace — the way thousands of injection runs across a cluster
// coordinate through one hub.
//
//	go run ./examples/distributed_campaign
//	go run ./examples/distributed_campaign -runs 500 -hub 127.0.0.1:7070
//
// (With -hub pointing at an external `cmd/tainthub` instance, the campaign
// uses that server instead of starting its own.)
package main

import (
	"flag"
	"fmt"
	"log"

	"chaser/internal/apps"
	"chaser/internal/campaign"
	"chaser/internal/tainthub"
)

func main() {
	runs := flag.Int("runs", 200, "injection runs")
	hubAddr := flag.String("hub", "", "external TaintHub address (default: start one)")
	flag.Parse()

	addr := *hubAddr
	if addr == "" {
		srv, err := tainthub.NewServer(tainthub.NewLocal(), "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addr = srv.Addr()
		fmt.Printf("started tainthub on %s\n", addr)
	}
	client, err := tainthub.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	app, err := apps.ByName("clamr_mpi")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %d traced injection runs against %s (%d ranks), shared hub ==\n",
		*runs, app.Name, app.WorldSize)
	sum, err := campaign.Run(campaign.Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0,
		Runs: *runs, Bits: 1, Seed: 2020, Trace: true,
		Hub: client,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sum.Report())
	fmt.Printf("cross-rank propagation in %d runs (%.1f%%)\n",
		sum.PropagatedRuns, 100*float64(sum.PropagatedRuns)/float64(sum.Injected))

	st := client.Stats()
	fmt.Printf("hub totals: %d tainted statuses published, %d polls, %d hits, %d pending\n",
		st.Published, st.Polls, st.Hits, st.Pending)
}
