// CLAMR case study: a miniature version of the paper's Section IV analysis
// against the CLAMR mini-app — outcome statistics over a small campaign,
// the tainted-bytes-over-time curve for one run, and the tainted
// read/write distribution.
//
//	go run ./examples/clamr_study            # 200 runs
//	go run ./examples/clamr_study -runs 1000 # closer to the paper's scale
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"chaser/internal/apps"
	"chaser/internal/campaign"
)

func main() {
	runs := flag.Int("runs", 200, "injection runs")
	flag.Parse()

	app, err := apps.ByName("clamr")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== CLAMR fault-injection study: %d runs, 1 bit flip each ==\n\n", *runs)
	sum, err := campaign.Run(campaign.Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0,
		Runs: *runs, Bits: 1, Seed: 5195, Trace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sum.Report())
	detected := sum.Detected + sum.Terminated
	fmt.Printf("\ndetected (checker + crashes):   %d (%.2f%%)\n",
		detected, 100*float64(detected)/float64(sum.Injected))
	fmt.Printf("undetected, correct result:     %d (%.2f%%)\n",
		sum.Benign, 100*float64(sum.Benign)/float64(sum.Injected))
	fmt.Printf("undetected, incorrect (SDC):    %d (%.2f%%)\n",
		sum.SDC, 100*float64(sum.SDC)/float64(sum.Injected))
	fmt.Println("(paper, 5195 runs: 83.71% detected, 11.89% correct, 4.38% SDC)")

	fmt.Printf("\n== tainted bytes in propagation (one traced run) ==\n")
	points, res, err := campaign.Timeline(campaign.TimelineConfig{
		Prog: app.Prog, WorldSize: 1, Ops: app.DefaultOps,
		N: 300, Bits: 1, Seed: 2, SampleInterval: 10_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run ended: %s\n", res.Terms[0])
	for _, p := range points {
		bar := int(p.TaintedBytes / 4)
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("%8d instrs %5d bytes %s\n", p.Instrs, p.TaintedBytes, strings.Repeat("*", bar))
	}

	fmt.Printf("\n== tainted memory operations per run ==\n")
	fmt.Print(sum.MemOpsReport())

	fmt.Printf("\n== fault footprint by memory region (one traced run) ==\n")
	for region, rc := range res.Trace.Regions() {
		fmt.Printf("%-6s %6d tainted reads, %6d tainted writes\n", region, rc.Reads, rc.Writes)
	}
}
