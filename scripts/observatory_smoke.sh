#!/bin/sh
# observatory_smoke.sh — end-to-end smoke test of the live campaign
# dashboard: run a real traced campaign with -metrics-addr, then scrape the
# observatory over HTTP and validate what it serves (the in-process
# equivalent lives in internal/campaign/observatory_test.go; this exercises
# cmd/campaign's listener plumbing and the -hold window CI scrapes in).
#
# 1. Start a campaign serving the observatory on an ephemeral port.
# 2. Poll /progress until the campaign reports finished.
# 3. Validate /progress JSON (all runs done, heatmap present).
# 4. Pull a retained run's provenance.json and .dot and validate them.
#
# Usage: scripts/observatory_smoke.sh
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
trap 'rm -rf "$work"; kill "$pid" 2>/dev/null || true' EXIT

go build -o "$work/campaign" ./cmd/campaign

# A sh-portable JSON validity check built on the toolchain the repo already
# requires (no jq/python dependency).
cat >"$work/jsonok.go" <<'EOF'
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	var v any
	if err := json.NewDecoder(os.Stdin).Decode(&v); err != nil {
		fmt.Fprintln(os.Stderr, "invalid JSON:", err)
		os.Exit(1)
	}
}
EOF
jsonok() { go run "$work/jsonok.go"; }

echo "observatory_smoke: starting campaign with dashboard"
"$work/campaign" -experiment run -app matvec -runs 20 -seed 7 -parallel 2 \
    -metrics-addr 127.0.0.1:0 -hold 60s >"$work/out.txt" 2>"$work/err.txt" &
pid=$!

# The ephemeral port is announced on stderr:
#   campaign: observatory on http://127.0.0.1:PORT/
base=""
i=0
while [ -z "$base" ]; do
    i=$((i + 1))
    if [ $i -gt 100 ]; then
        echo "observatory_smoke: dashboard never came up" >&2
        cat "$work/err.txt" >&2
        exit 1
    fi
    base="$(sed -n 's|.*observatory on \(http://[^/]*\)/.*|\1|p' "$work/err.txt" | head -n1)"
    [ -n "$base" ] || sleep 0.1
done
echo "observatory_smoke: dashboard at $base"

# Wait until the campaign has finished (the -hold window keeps it serving).
i=0
until curl -sf "$base/progress" | grep -q '"finished": true'; do
    i=$((i + 1))
    if [ $i -gt 300 ]; then
        echo "observatory_smoke: campaign did not finish within 30s" >&2
        exit 1
    fi
    sleep 0.1
done

echo "observatory_smoke: validating /progress"
curl -sf "$base/progress" >"$work/progress.json"
jsonok <"$work/progress.json"
grep -q '"done": 20' "$work/progress.json" || {
    echo "observatory_smoke: FAIL — /progress does not report 20 done runs" >&2
    cat "$work/progress.json" >&2
    exit 1
}
grep -q '"heatmap"' "$work/progress.json" || {
    echo "observatory_smoke: FAIL — /progress has no heatmap" >&2
    exit 1
}

echo "observatory_smoke: validating /metrics"
curl -sf "$base/metrics" | grep -q '^campaign_runs_completed_total' || {
    echo "observatory_smoke: FAIL — /metrics missing campaign counters" >&2
    exit 1
}

echo "observatory_smoke: validating provenance export"
curl -sf "$base/runs" >"$work/runs.json"
jsonok <"$work/runs.json"
id="$(sed -n 's/.*"id": \([0-9][0-9]*\).*/\1/p' "$work/runs.json" | head -n1)"
if [ -z "$id" ]; then
    echo "observatory_smoke: FAIL — no retained runs in /runs" >&2
    cat "$work/runs.json" >&2
    exit 1
fi
curl -sf "$base/runs/$id/provenance.json" >"$work/provenance.json"
jsonok <"$work/provenance.json"
grep -q '"nodes"' "$work/provenance.json" || {
    echo "observatory_smoke: FAIL — provenance.json has no nodes field" >&2
    exit 1
}
curl -sf "$base/runs/$id/provenance.dot" | grep -q '^digraph' || {
    echo "observatory_smoke: FAIL — provenance.dot is not DOT" >&2
    exit 1
}

echo "observatory_smoke: validating /events"
curl -sf "$base/events?since=0" >"$work/events.json"
jsonok <"$work/events.json"
grep -q '"type": "run_done"' "$work/events.json" || {
    echo "observatory_smoke: FAIL — /events has no run_done marker" >&2
    exit 1
}

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
echo "observatory_smoke: OK — dashboard served progress, metrics, provenance and events"
