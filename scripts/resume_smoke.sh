#!/bin/sh
# resume_smoke.sh — end-to-end checkpoint/resume smoke test against the real
# binary and a real SIGINT (the in-process equivalent lives in
# internal/campaign/robust_test.go; this exercises the signal plumbing of
# cmd/campaign itself).
#
# 1. Run an uninterrupted campaign, capture its summary.
# 2. Start the same campaign with a journal, SIGINT it mid-flight.
# 3. Resume from the journal; the final summary must match step 1 exactly.
#
# Usage: scripts/resume_smoke.sh
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/campaign" ./cmd/campaign

app=kmeans runs=1000 seed=77
common="-experiment run -app $app -runs $runs -seed $seed -parallel 2"

echo "resume_smoke: uninterrupted baseline"
"$work/campaign" $common >"$work/full.txt"

echo "resume_smoke: interrupting mid-flight"
"$work/campaign" $common -journal "$work/run.jsonl" -progress \
    >"$work/interrupted.txt" 2>"$work/progress.txt" &
pid=$!
# Wait for the first completed runs to hit the journal, then interrupt.
# The journal's first line is the header, so >1 line means >=1 run done.
i=0
while [ "$({ wc -l <"$work/run.jsonl"; } 2>/dev/null || echo 0)" -le 1 ]; do
    i=$((i + 1))
    if [ $i -gt 200 ]; then
        echo "resume_smoke: no runs journaled within 20s" >&2
        kill "$pid" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
kill -INT "$pid" 2>/dev/null || true # may have already finished
wait "$pid" || { echo "resume_smoke: interrupted campaign exited non-zero" >&2; exit 1; }

if ! grep -q "campaign interrupted" "$work/interrupted.txt"; then
    # The campaign finished before the signal landed; the resume below then
    # just replays a complete journal, which is still a valid (weaker) check.
    echo "resume_smoke: warning: campaign completed before SIGINT"
fi

echo "resume_smoke: resuming"
"$work/campaign" $common -resume "$work/run.jsonl" >"$work/resumed.txt"

if ! cmp -s "$work/full.txt" "$work/resumed.txt"; then
    echo "resume_smoke: FAIL — resumed summary differs from uninterrupted run" >&2
    diff "$work/full.txt" "$work/resumed.txt" >&2 || true
    exit 1
fi
echo "resume_smoke: OK — resumed summary identical to uninterrupted run"
