#!/bin/sh
# bench.sh — run the repo's ablation benchmarks and emit machine-readable
# summaries: the shared-translation-cache ablation to BENCH_PR2.json (or $1),
# the fast-path/fusion ablation to BENCH_PR5.json (or $2), the fork-point
# run-multiplexing ablation to BENCH_PR7.json (or $3), and the hub wire-codec
# ablation to BENCH_PR10.json (or $4).
#
# Usage: scripts/bench.sh [pr2-output.json] [pr5-output.json] [pr7-output.json] [pr10-output.json]
#
# The PR2 benchmark runs the same 100-run CLAMR campaign twice — once with
# the shared base cache (default behaviour) and once with per-machine private
# translator caches (NoSharedCache, the pre-shared-cache behaviour) — and
# reports translated blocks, emitted micro-ops and base-cache hits per mode.
#
# The PR5 benchmark runs a LUD decomposition under the taint-free fast loop
# with micro-op fusion against the always-branching full loop without fusion
# (the pre-dual-loop engine), plus a fusion-only ablation, and reports median
# ns/op per arm and the resulting speedups.
#
# The PR7 benchmark runs the same single-site LUD BitSweep-style campaign
# (injection pinned at 90% of the golden execution count) with fork-point run
# multiplexing against the replay-the-prefix-every-run baseline (NoFork), and
# reports runs/sec per arm, the throughput speedup, and the snapshot cache's
# memory high-water mark.
#
# The PR10 benchmark drives publish+poll RPC pairs (sparse 4 KiB masks)
# through a byte-counting TCP proxy twice — once over the legacy JSON line
# protocol with no batching (the pre-codec wire) and once over the compact
# binary codec with client-side batching and pipelining (the default) — and
# reports RPC throughput, wire bytes per RPC, and the resulting speedup and
# bytes-per-op reduction.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR2.json}"

raw="$(go test -run '^$' -bench 'SharedVsPrivateCache' -benchtime=1x .)"
echo "$raw"

echo "$raw" | awk -v out="$out" '
/^BenchmarkSharedVsPrivateCache\// {
    split($1, parts, "/")
    mode = parts[2]
    sub(/-[0-9]+$/, "", mode)  # strip the -GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")          ns[mode] = $i
        if ($(i+1) == "translated_tbs") tbs[mode] = $i
        if ($(i+1) == "emitted_ops")    ops[mode] = $i
        if ($(i+1) == "base_hits")      hits[mode] = $i
    }
}
END {
    if (!("shared" in tbs) || !("private" in tbs)) {
        print "bench.sh: benchmark output missing shared/private results" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkSharedVsPrivateCache\",\n" > out
    printf "  \"shared\":  {\"ns_per_op\": %s, \"translated_tbs\": %s, \"emitted_ops\": %s, \"base_hits\": %s},\n", \
        ns["shared"], tbs["shared"], ops["shared"], hits["shared"] > out
    printf "  \"private\": {\"ns_per_op\": %s, \"translated_tbs\": %s, \"emitted_ops\": %s, \"base_hits\": %s},\n", \
        ns["private"], tbs["private"], ops["private"], hits["private"] > out
    printf "  \"translation_reduction_x\": %.2f\n", tbs["private"] / tbs["shared"] > out
    printf "}\n" > out
}
'

echo "wrote $out"

out5="${2:-BENCH_PR5.json}"

raw5="$(go test -run '^$' -bench 'FastPathVsFull|Fusion' -benchtime=3s -count=3 .)"
echo "$raw5"

echo "$raw5" | awk -v out="$out5" '
/^BenchmarkFastPathVsFull\// || /^BenchmarkFusion\// {
    split($1, parts, "/")
    mode = parts[2]
    sub(/-[0-9]+$/, "", mode)  # strip the -GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") { n[mode]++; ns[mode "," n[mode]] = $i }
        if ($(i+1) == "fused_ops") fused[mode] = $i
    }
}
# median of the repeated -count runs, so one noisy run cannot skew the record
function median(mode,    c, i, j, t, v) {
    c = n[mode]
    for (i = 1; i <= c; i++) v[i] = ns[mode "," i] + 0
    for (i = 1; i <= c; i++)
        for (j = i + 1; j <= c; j++)
            if (v[j] < v[i]) { t = v[i]; v[i] = v[j]; v[j] = t }
    return v[int((c + 1) / 2)]
}
END {
    fast = median("fast+fusion"); full = median("full-nofusion")
    fon = median("fusion-on"); foff = median("fusion-off")
    if (!fast || !full || !fon || !foff) {
        print "bench.sh: benchmark output missing fast-path/fusion results" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkFastPathVsFull + BenchmarkFusion\",\n" > out
    printf "  \"workload\": \"LUD n=48 (~2M guest instrs/run), shared pre-warmed base cache, median of 3\",\n" > out
    printf "  \"fast_ns_per_op\": %d,\n", fast > out
    printf "  \"full_ns_per_op\": %d,\n", full > out
    printf "  \"fastpath_speedup_x\": %.2f,\n", full / fast > out
    printf "  \"fusion_on_ns_per_op\": %d,\n", fon > out
    printf "  \"fusion_off_ns_per_op\": %d,\n", foff > out
    printf "  \"fusion_speedup_x\": %.2f,\n", foff / fon > out
    printf "  \"fused_ops\": %d\n", fused["fusion-on"] > out
    printf "}\n" > out
}
'

echo "wrote $out5"

out7="${3:-BENCH_PR7.json}"

raw7="$(go test -run '^$' -bench 'ForkVsScratch' -benchtime=1x -count=3 .)"
echo "$raw7"

echo "$raw7" | awk -v out="$out7" '
/^BenchmarkForkVsScratch\// {
    split($1, parts, "/")
    mode = parts[2]
    sub(/-[0-9]+$/, "", mode)  # strip the -GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "runs/sec")   { n[mode]++; rps[mode "," n[mode]] = $i }
        if ($(i+1) == "snap_bytes") snap = $i
        if ($(i+1) == "fallbacks")  fb = $i
    }
}
# median of the repeated -count runs, so one noisy run cannot skew the record
function median(mode,    c, i, j, t, v) {
    c = n[mode]
    for (i = 1; i <= c; i++) v[i] = rps[mode "," i] + 0
    for (i = 1; i <= c; i++)
        for (j = i + 1; j <= c; j++)
            if (v[j] < v[i]) { t = v[i]; v[i] = v[j]; v[j] = t }
    return v[int((c + 1) / 2)]
}
END {
    forked = median("forked"); scratch = median("scratch")
    if (!forked || !scratch) {
        print "bench.sh: benchmark output missing fork/scratch results" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkForkVsScratch\",\n" > out
    printf "  \"workload\": \"LUD n=48 single-site campaign, 40 runs, site at 90%% of golden executions, median of 3\",\n" > out
    printf "  \"forked_runs_per_sec\": %.1f,\n", forked > out
    printf "  \"scratch_runs_per_sec\": %.1f,\n", scratch > out
    printf "  \"fork_speedup_x\": %.2f,\n", forked / scratch > out
    printf "  \"fork_fallbacks\": %d,\n", fb + 0 > out
    printf "  \"snapshot_cache_high_water_bytes\": %d\n", snap + 0 > out
    printf "}\n" > out
}
'

echo "wrote $out7"

out10="${4:-BENCH_PR10.json}"

raw10="$(go test -run '^$' -bench 'HubWire' -benchtime=2s -count=3 ./internal/tainthub/)"
echo "$raw10"

echo "$raw10" | awk -v out="$out10" '
/^BenchmarkHubWire\// {
    split($1, parts, "/")
    mode = parts[2]
    sub(/-[0-9]+$/, "", mode)  # strip the -GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "rpcs/sec")     { nr[mode]++; rps[mode "," nr[mode]] = $i }
        if ($(i+1) == "wirebytes/rpc") { nb[mode]++; bpr[mode "," nb[mode]] = $i }
    }
}
# median of the repeated -count runs, so one noisy run cannot skew the record
function median(arr, n,    c, i, j, t, v) {
    c = n
    for (i = 1; i <= c; i++) v[i] = arr[i] + 0
    for (i = 1; i <= c; i++)
        for (j = i + 1; j <= c; j++)
            if (v[j] < v[i]) { t = v[i]; v[i] = v[j]; v[j] = t }
    return v[int((c + 1) / 2)]
}
function medianOf(tbl, mode, n,    i, v) {
    for (i = 1; i <= n; i++) v[i] = tbl[mode "," i]
    return median(v, n)
}
END {
    jrps = medianOf(rps, "json", nr["json"]); brps = medianOf(rps, "binary", nr["binary"])
    jbpr = medianOf(bpr, "json", nb["json"]); bbpr = medianOf(bpr, "binary", nb["binary"])
    if (!jrps || !brps || !jbpr || !bbpr) {
        print "bench.sh: benchmark output missing json/binary wire results" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkHubWire\",\n" > out
    printf "  \"workload\": \"publish+poll pairs, sparse 4 KiB masks, 8x parallel, byte-counting proxy, median of 3\",\n" > out
    printf "  \"json\":   {\"rpcs_per_sec\": %.0f, \"wire_bytes_per_rpc\": %.1f},\n", jrps, jbpr > out
    printf "  \"binary\": {\"rpcs_per_sec\": %.0f, \"wire_bytes_per_rpc\": %.1f},\n", brps, bbpr > out
    printf "  \"rpc_speedup_x\": %.2f,\n", brps / jrps > out
    printf "  \"bytes_reduction_x\": %.2f\n", jbpr / bbpr > out
    printf "}\n" > out
}
'

echo "wrote $out10"
