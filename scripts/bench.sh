#!/bin/sh
# bench.sh — run the shared-translation-cache ablation benchmark and emit a
# machine-readable summary to BENCH_PR2.json (in the repo root, or $1).
#
# Usage: scripts/bench.sh [output.json]
#
# The benchmark runs the same 100-run CLAMR campaign twice — once with the
# shared base cache (default behaviour) and once with per-machine private
# translator caches (NoSharedCache, the pre-shared-cache behaviour) — and
# reports translated blocks, emitted micro-ops and base-cache hits per mode.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR2.json}"

raw="$(go test -run '^$' -bench 'SharedVsPrivateCache' -benchtime=1x .)"
echo "$raw"

echo "$raw" | awk -v out="$out" '
/^BenchmarkSharedVsPrivateCache\// {
    split($1, parts, "/")
    mode = parts[2]
    sub(/-[0-9]+$/, "", mode)  # strip the -GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")          ns[mode] = $i
        if ($(i+1) == "translated_tbs") tbs[mode] = $i
        if ($(i+1) == "emitted_ops")    ops[mode] = $i
        if ($(i+1) == "base_hits")      hits[mode] = $i
    }
}
END {
    if (!("shared" in tbs) || !("private" in tbs)) {
        print "bench.sh: benchmark output missing shared/private results" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkSharedVsPrivateCache\",\n" > out
    printf "  \"shared\":  {\"ns_per_op\": %s, \"translated_tbs\": %s, \"emitted_ops\": %s, \"base_hits\": %s},\n", \
        ns["shared"], tbs["shared"], ops["shared"], hits["shared"] > out
    printf "  \"private\": {\"ns_per_op\": %s, \"translated_tbs\": %s, \"emitted_ops\": %s, \"base_hits\": %s},\n", \
        ns["private"], tbs["private"], ops["private"], hits["private"] > out
    printf "  \"translation_reduction_x\": %.2f\n", tbs["private"] / tbs["shared"] > out
    printf "}\n" > out
}
'

echo "wrote $out"
