#!/bin/sh
# chaserd_ha_smoke.sh — end-to-end HA failover + fencing smoke test against
# the real binaries and a real SIGKILL (the in-process equivalent lives in
# internal/server/ha_test.go; this exercises cmd/chaserd's HA flags, the
# cross-process fence file, WAL shipping between two processes, and the
# failover-aware client in cmd/campaign).
#
# Phase 1 — failover under chaos:
#   1. Run an uninterrupted standalone campaign, capture its report.
#   2. Start a leader + hot-standby follower pair (shared fence file and
#      data dir, private WALs) with replication chaos armed on the leader
#      (dropped and torn shipping frames), plus 2 worker processes pointed
#      at both peers.
#   3. Submit the same campaign sharded; kill -9 the leader mid-shard.
#   4. The follower must promote (server_failovers_total >= 1) and the
#      watched report must match the baseline bit for bit.
#
# Phase 2 — fencing a deposed-but-alive leader:
#   5. Start a fresh pair whose leader runs under clock.freeze chaos: its
#      fencer clock pins, it misses renewals, and the follower deposes it
#      while it still believes it leads.
#   6. A submit loop hammers the frozen leader directly; every write it
#      attempts while deposed must be fenced (server_fenced_appends_total
#      >= 1, server_demotions_total >= 1), and the new leader must have
#      promoted over a live process (server_failovers_total >= 1).
#
# Usage: scripts/chaserd_ha_smoke.sh
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
pids=""
trap 'for p in $pids; do kill "$p" 2>/dev/null || true; done; rm -rf "$work"' EXIT

go build -o "$work/campaign" ./cmd/campaign
go build -o "$work/chaserd" ./cmd/chaserd

app=kmeans runs=60 seed=4242 shards=6

# wait_log FILE PATTERN DESC: poll until PATTERN appears in FILE.
wait_log() {
    i=0
    until grep -q "$2" "$1"; do
        i=$((i + 1))
        if [ $i -gt 300 ]; then
            echo "chaserd_ha_smoke: timed out waiting for $3" >&2
            tail -5 "$1" >&2 || true
            exit 1
        fi
        sleep 0.1
    done
}

# metric ADDR NAME: print one counter's value (empty if absent).
metric() {
    curl -sf "http://$1/metrics" |
        sed -n "s/^$2 \([0-9][0-9]*\)\$/\1/p"
}

# wait_metric ADDR NAME MIN DESC: poll until the counter is >= MIN.
wait_metric() {
    i=0
    while :; do
        v="$(metric "$1" "$2" || true)"
        if [ -n "${v:-}" ] && [ "$v" -ge "$3" ]; then
            echo "chaserd_ha_smoke: $4 ($2 = $v)"
            return 0
        fi
        i=$((i + 1))
        if [ $i -gt 300 ]; then
            echo "chaserd_ha_smoke: FAIL — timed out waiting for $4" >&2
            curl -sf "http://$1/metrics" | grep '^server_' >&2 || true
            exit 1
        fi
        sleep 0.1
    done
}

echo "chaserd_ha_smoke: uninterrupted standalone baseline"
"$work/campaign" -experiment run -app $app -runs $runs -seed $seed \
    -parallel 2 >"$work/baseline.txt"

# ---- Phase 1: kill -9 the leader mid-campaign under replication chaos ----

echo "chaserd_ha_smoke: starting HA pair (replication chaos on the leader)"
"$work/chaserd" -addr 127.0.0.1:0 -store "$work/a" -data "$work/shared" \
    -fence-file "$work/fence" -role leader -leader-ttl 2s -lease-ttl 2s \
    -chaos "seed=7,rate=0.04,sites=repl.drop_frame+repl.tear_frame" \
    >"$work/a.log" 2>&1 &
apid=$!
pids="$apid"
wait_log "$work/a.log" "^chaserd listening on " "leader startup"
addra="$(sed -n 's/^chaserd listening on //p' "$work/a.log")"
wait_log "$work/a.log" "leading at epoch" "initial leader election"

"$work/chaserd" -addr 127.0.0.1:0 -store "$work/b" -data "$work/shared" \
    -fence-file "$work/fence" -role follower -peer "http://$addra" \
    -leader-ttl 2s -lease-ttl 2s >"$work/b.log" 2>&1 &
bpid=$!
pids="$apid $bpid"
wait_log "$work/b.log" "^chaserd listening on " "follower startup"
addrb="$(sed -n 's/^chaserd listening on //p' "$work/b.log")"
echo "chaserd_ha_smoke: leader on $addra, follower on $addrb"

peers="$addra,$addrb"
"$work/chaserd" -worker -connect "http://$addra,http://$addrb" -name w1 \
    -poll 100ms >"$work/w1.log" 2>&1 &
w1pid=$!
"$work/chaserd" -worker -connect "http://$addra,http://$addrb" -name w2 \
    -poll 100ms >"$work/w2.log" 2>&1 &
w2pid=$!
pids="$apid $bpid $w1pid $w2pid"

id="$("$work/campaign" -experiment submit -chaserd "$peers" \
    -app $app -runs $runs -seed $seed -shards $shards 2>/dev/null)"
echo "chaserd_ha_smoke: submitted $id"

# Kill the leader with a shard mid-flight and the hot standby demonstrably
# caught up past the campaign record (a torn or dropped frame severs the
# stream, so the counter also proves recovery under chaos). No drain, no
# fence release — the follower must wait out the fence TTL like after a
# power cut.
wait_log "$work/w1.log" "claimed campaign" "first shard claim"
wait_metric "$addrb" server_repl_frames_applied_total 4 \
    "standby caught up under replication chaos"
echo "chaserd_ha_smoke: SIGKILLing the leader mid-shard"
kill -9 "$apid"
wait "$apid" 2>/dev/null || true
pids="$bpid $w1pid $w2pid"

wait_metric "$addrb" server_failovers_total 1 "follower promoted over the dead leader"

echo "chaserd_ha_smoke: watching $id to completion on the new leader"
if ! "$work/campaign" -experiment watch -chaserd "$peers" -campaign "$id" \
    >"$work/watched.txt"; then
    echo "chaserd_ha_smoke: FAIL — watch did not complete after failover" >&2
    tail -5 "$work/b.log" >&2
    exit 1
fi
if ! cmp -s "$work/baseline.txt" "$work/watched.txt"; then
    echo "chaserd_ha_smoke: FAIL — post-failover report differs from baseline" >&2
    diff "$work/baseline.txt" "$work/watched.txt" >&2 || true
    exit 1
fi
echo "chaserd_ha_smoke: phase 1 OK — report identical across leader kill -9"

for p in $w1pid $w2pid $bpid; do kill "$p" 2>/dev/null || true; done
wait "$w1pid" "$w2pid" "$bpid" 2>/dev/null || true
pids=""

# ---- Phase 2: fence a deposed-but-alive leader (frozen fencer clock) ----

echo "chaserd_ha_smoke: starting pair 2 (clock.freeze chaos on the leader)"
# The frozen leader renews at leader-ttl/3 wall time, so after the standby
# deposes it there is a window of up to 2s before it notices. Raised tenant
# limits keep the submit loop from dying at the rate limiter before it can
# reach the append guard inside that window.
"$work/chaserd" -addr 127.0.0.1:0 -store "$work/a2" -data "$work/shared2" \
    -fence-file "$work/fence2" -role leader -leader-ttl 6s \
    -tenant-max-active 100000 -tenant-rate 1000 -tenant-burst 1000 \
    -chaos "seed=3,rate=1,sites=clock.freeze" >"$work/a2.log" 2>&1 &
a2pid=$!
pids="$a2pid"
wait_log "$work/a2.log" "^chaserd listening on " "frozen leader startup"
addra2="$(sed -n 's/^chaserd listening on //p' "$work/a2.log")"
wait_log "$work/a2.log" "leading at epoch" "frozen leader election"

"$work/chaserd" -addr 127.0.0.1:0 -store "$work/b2" -data "$work/shared2" \
    -fence-file "$work/fence2" -role follower -peer "http://$addra2" \
    -leader-ttl 3s >"$work/b2.log" 2>&1 &
b2pid=$!
pids="$a2pid $b2pid"
wait_log "$work/b2.log" "^chaserd listening on " "standby 2 startup"
addrb2="$(sed -n 's/^chaserd listening on //p' "$work/b2.log")"

wait_metric "$addrb2" server_failovers_total 1 \
    "standby promoted over the live-but-frozen leader"

# The deposed leader stays unaware until its next renewal (up to
# leader-ttl/3 away). Hammer it with direct submits inside that window:
# each one must die at the append guard — fenced, zero bytes written — and
# be counted. The hammer must not start earlier: every append validates
# the fence through the chaos clock, and those reads would drain the
# freeze window and let the leader renew with fresh timestamps.
(
    while :; do
        curl -s -o /dev/null -X POST "http://$addra2/api/v1/campaigns" \
            -d '{"app":"kmeans","runs":2,"seed":1}' || true
        sleep 0.05
    done
) &
subpid=$!
pids="$a2pid $b2pid $subpid"

wait_metric "$addra2" server_fenced_appends_total 1 \
    "deposed leader's writes were fenced"
wait_metric "$addra2" server_demotions_total 1 "deposed leader demoted itself"

kill "$subpid" 2>/dev/null || true
wait "$subpid" 2>/dev/null || true
echo "chaserd_ha_smoke: phase 2 OK — zero writes accepted from the deposed epoch"
echo "chaserd_ha_smoke: OK — failover preserved the report bit-for-bit and fencing held"
