#!/bin/sh
# hub_crash_smoke.sh — end-to-end TaintHub durability smoke test against the
# real binaries and a real SIGKILL (the in-process equivalent lives in
# internal/campaign/robust_test.go; this exercises cmd/tainthub's WAL
# recovery and cmd/campaign's retry plumbing).
#
# 1. Run an uninterrupted campaign against a private hub, capture its summary.
# 2. Start a durable tainthub (-wal), run the same campaign against it under
#    -hub-policy fail, and kill -9 the hub mid-flight.
# 3. Restart tainthub cold from the WAL on the same address; the campaign's
#    retries must ride out the outage and the final summary must match
#    step 1 exactly, with the restart reporting recovered records.
#
# Usage: scripts/hub_crash_smoke.sh
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
hubpid=""
# Wait for the hub after killing it: SIGTERM makes it write a final
# snapshot, which would race the rm -rf.
trap 'kill "$hubpid" 2>/dev/null || true; wait "$hubpid" 2>/dev/null || true; rm -rf "$work"' EXIT

go build -o "$work/campaign" ./cmd/campaign
go build -o "$work/tainthub" ./cmd/tainthub

# matvec: its tainted results cross ranks over MPI, so the campaign
# actually exercises the hub (kmeans keeps taint rank-local).
app=matvec runs=1000 seed=77
common="-experiment run -app $app -runs $runs -seed $seed -parallel 2"

echo "hub_crash_smoke: uninterrupted baseline (private hub)"
"$work/campaign" $common >"$work/full.txt"

echo "hub_crash_smoke: starting durable tainthub"
# Shutdown-only snapshots (-snapshot-interval 0): kill -9 preempts the
# final snapshot, so the restart must rebuild state from the WAL alone.
"$work/tainthub" -addr 127.0.0.1:0 -wal "$work/hub.wal" \
    -snapshot-interval 0 >"$work/hub1.txt" 2>&1 &
hubpid=$!
i=0
until addr="$(sed -n 's/^tainthub listening on //p' "$work/hub1.txt")" \
    && [ -n "$addr" ]; do
    i=$((i + 1))
    if [ $i -gt 100 ]; then
        echo "hub_crash_smoke: tainthub never came up" >&2
        exit 1
    fi
    sleep 0.1
done
echo "hub_crash_smoke: hub on $addr"

"$work/campaign" $common -hub "$addr" -hub-policy fail \
    -journal "$work/run.jsonl" >"$work/crashed.txt" 2>&1 &
cpid=$!
# Wait until a few runs are journaled (hub traffic has flowed), then crash
# the hub the hard way.
i=0
while [ "$({ wc -l <"$work/run.jsonl"; } 2>/dev/null || echo 0)" -le 5 ]; do
    i=$((i + 1))
    if [ $i -gt 200 ]; then
        echo "hub_crash_smoke: no runs journaled within 20s" >&2
        kill "$cpid" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done

echo "hub_crash_smoke: SIGKILLing the hub"
kill -9 "$hubpid"
wait "$hubpid" 2>/dev/null || true

echo "hub_crash_smoke: restarting cold from the WAL"
"$work/tainthub" -addr "$addr" -wal "$work/hub.wal" \
    -snapshot-interval 2s >"$work/hub2.txt" 2>&1 &
hubpid=$!

if ! wait "$cpid"; then
    echo "hub_crash_smoke: FAIL — campaign did not survive the hub crash" >&2
    tail -5 "$work/crashed.txt" >&2
    exit 1
fi

if ! grep -q "^tainthub: recovered" "$work/hub2.txt"; then
    echo "hub_crash_smoke: FAIL — restarted hub reported no recovery" >&2
    cat "$work/hub2.txt" >&2
    exit 1
fi
recovered="$(sed -n 's/^tainthub: recovered \([0-9]*\) records.*/\1/p' "$work/hub2.txt")"
echo "hub_crash_smoke: restarted hub recovered $recovered records"
if [ "$recovered" -eq 0 ]; then
    echo "hub_crash_smoke: FAIL — WAL was empty at the crash (no hub traffic?)" >&2
    exit 1
fi

if ! cmp -s "$work/full.txt" "$work/crashed.txt"; then
    echo "hub_crash_smoke: FAIL — summary differs from uninterrupted run" >&2
    diff "$work/full.txt" "$work/crashed.txt" >&2 || true
    exit 1
fi
echo "hub_crash_smoke: OK — summary identical across hub kill -9 + WAL recovery"
