#!/bin/sh
# chaserd_crash_smoke.sh — end-to-end control-plane durability smoke test
# against the real binaries and real SIGKILLs (the in-process equivalent
# lives in internal/server/server_test.go; this exercises cmd/chaserd's WAL
# recovery, lease expiry across processes, and cmd/campaign's submit/watch
# client).
#
# 1. Run an uninterrupted standalone campaign, capture its report.
# 2. Start chaserd + 2 worker processes, submit the same campaign sharded.
# 3. kill -9 one worker mid-shard; chaserd must expire its lease and
#    re-enqueue the shard (asserted via /metrics on the FIRST instance).
# 4. kill -9 chaserd itself, restart it cold from the store on the same
#    address; the surviving worker and a replacement finish the campaign.
# 5. The watched report must match the uninterrupted baseline bit for bit.
#
# Usage: scripts/chaserd_crash_smoke.sh
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
pids=""
trap 'for p in $pids; do kill "$p" 2>/dev/null || true; done; rm -rf "$work"' EXIT

go build -o "$work/campaign" ./cmd/campaign
go build -o "$work/chaserd" ./cmd/chaserd

app=kmeans runs=60 seed=4242 shards=6

echo "chaserd_crash_smoke: uninterrupted standalone baseline"
"$work/campaign" -experiment run -app $app -runs $runs -seed $seed \
    -parallel 2 >"$work/baseline.txt"

echo "chaserd_crash_smoke: starting chaserd"
# Short lease so the killed worker's shard requeues within seconds.
"$work/chaserd" -addr 127.0.0.1:0 -store "$work/state" \
    -lease-ttl 2s >"$work/srv1.log" 2>&1 &
srvpid=$!
pids="$srvpid"
i=0
until addr="$(sed -n 's/^chaserd listening on //p' "$work/srv1.log")" \
    && [ -n "$addr" ]; do
    i=$((i + 1))
    if [ $i -gt 100 ]; then
        echo "chaserd_crash_smoke: chaserd never came up" >&2
        exit 1
    fi
    sleep 0.1
done
echo "chaserd_crash_smoke: chaserd on $addr"

"$work/chaserd" -worker -connect "http://$addr" -name w1 \
    -poll 100ms >"$work/w1.log" 2>&1 &
w1pid=$!
"$work/chaserd" -worker -connect "http://$addr" -name w2 \
    -poll 100ms >"$work/w2.log" 2>&1 &
w2pid=$!
pids="$srvpid $w1pid $w2pid"

id="$("$work/campaign" -experiment submit -chaserd "$addr" \
    -app $app -runs $runs -seed $seed -shards $shards 2>/dev/null)"
echo "chaserd_crash_smoke: submitted $id"

# Wait until w1 has claimed at least one shard, then kill -9 it mid-shard.
i=0
until grep -q "w1: claimed" "$work/w1.log"; do
    i=$((i + 1))
    if [ $i -gt 200 ]; then
        echo "chaserd_crash_smoke: w1 never claimed a shard" >&2
        exit 1
    fi
    sleep 0.1
done
echo "chaserd_crash_smoke: SIGKILLing worker w1 mid-shard"
kill -9 "$w1pid"
wait "$w1pid" 2>/dev/null || true

# The first chaserd must detect the dead lease and requeue the shard.
# Metrics are in-memory, so this must be asserted before the restart.
i=0
while :; do
    metrics="$(curl -sf "http://$addr/metrics" || true)"
    expired="$(printf '%s\n' "$metrics" |
        sed -n 's/^server_lease_expired_total \([0-9]*\)$/\1/p')"
    requeued="$(printf '%s\n' "$metrics" |
        sed -n 's/^server_shards_requeued_total \([0-9]*\)$/\1/p')"
    if [ -n "${expired:-}" ] && [ "$expired" -gt 0 ] &&
        [ -n "${requeued:-}" ] && [ "$requeued" -gt 0 ]; then
        break
    fi
    i=$((i + 1))
    if [ $i -gt 200 ]; then
        echo "chaserd_crash_smoke: FAIL — lease never expired after worker kill" >&2
        printf '%s\n' "$metrics" | grep '^server_' >&2 || true
        exit 1
    fi
    sleep 0.1
done
echo "chaserd_crash_smoke: lease expired ($expired), shard requeued ($requeued)"

echo "chaserd_crash_smoke: SIGKILLing chaserd mid-campaign"
kill -9 "$srvpid"
wait "$srvpid" 2>/dev/null || true

echo "chaserd_crash_smoke: restarting chaserd cold from the store"
"$work/chaserd" -addr "$addr" -store "$work/state" \
    -lease-ttl 2s >"$work/srv2.log" 2>&1 &
srvpid=$!
i=0
until grep -q "^chaserd listening on " "$work/srv2.log"; do
    i=$((i + 1))
    if [ $i -gt 100 ]; then
        echo "chaserd_crash_smoke: restarted chaserd never came up" >&2
        cat "$work/srv2.log" >&2
        exit 1
    fi
    sleep 0.1
done
# A replacement worker joins the survivor against the restarted server.
"$work/chaserd" -worker -connect "http://$addr" -name w3 \
    -poll 100ms >"$work/w3.log" 2>&1 &
w3pid=$!
pids="$srvpid $w2pid $w3pid"

echo "chaserd_crash_smoke: watching $id to completion"
if ! "$work/campaign" -experiment watch -chaserd "$addr" -campaign "$id" \
    >"$work/watched.txt"; then
    echo "chaserd_crash_smoke: FAIL — watch did not complete" >&2
    tail -5 "$work/srv2.log" >&2
    exit 1
fi

if ! cmp -s "$work/baseline.txt" "$work/watched.txt"; then
    echo "chaserd_crash_smoke: FAIL — merged report differs from baseline" >&2
    diff "$work/baseline.txt" "$work/watched.txt" >&2 || true
    exit 1
fi
echo "chaserd_crash_smoke: OK — report identical across worker kill -9, lease expiry, and chaserd restart"
