// Benchmarks regenerating the paper's tables and figures (one benchmark per
// table/figure, reporting the relevant quantities as custom metrics), plus
// ablation benchmarks for the design choices called out in DESIGN.md:
// just-in-time instrumentation vs. instrument-everything, and elastic taint
// on/off.
//
//	go test -bench=. -benchmem
//
// The campaign benchmarks use small run counts per iteration so the suite
// stays fast; cmd/campaign regenerates the same numbers at paper scale.
package chaser

import (
	"math/rand"
	"testing"

	"chaser/internal/apps"
	"chaser/internal/campaign"
	"chaser/internal/core"
	"chaser/internal/injectors"
	"chaser/internal/isa"
	"chaser/internal/lang"
	"chaser/internal/obs"
	"chaser/internal/tcg"
	"chaser/internal/vm"
)

func mustApp(b *testing.B, name string) apps.App {
	b.Helper()
	app, err := apps.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return app
}

// BenchmarkTable1_FaultModels measures the per-execution cost of the three
// fault-model conditions — the code on Chaser's hot instrumentation path.
func BenchmarkTable1_FaultModels(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	models := []struct {
		name string
		cond core.Condition
	}{
		{"Probabilistic", core.Probabilistic{P: 0.0001}},
		{"Deterministic", core.Deterministic{N: 1 << 40}},
		{"Group", core.Group{Start: 1000, Every: 100}},
	}
	for _, m := range models {
		b.Run(m.name, func(b *testing.B) {
			fired := 0
			for i := 0; i < b.N; i++ {
				if m.cond.ShouldInject(uint64(i+1), rng) {
					fired++
				}
			}
			_ = fired
		})
	}
}

// BenchmarkTable2_InjectorLOC reports the measured lines of code of the
// three Table II injectors.
func BenchmarkTable2_InjectorLOC(b *testing.B) {
	var rows []injectors.LOC
	for i := 0; i < b.N; i++ {
		rows = injectors.Table2()
	}
	for _, row := range rows {
		b.ReportMetric(float64(row.Raw), row.Name[:5]+"_loc")
	}
}

// BenchmarkTable3_MatvecTermination runs a small traced Matvec campaign per
// iteration and reports the termination-class percentages.
func BenchmarkTable3_MatvecTermination(b *testing.B) {
	app := mustApp(b, "matvec")
	var sum *campaign.Summary
	for i := 0; i < b.N; i++ {
		var err error
		sum, err = campaign.Run(campaign.Config{
			Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
			Ops: app.DefaultOps, TargetRank: app.TargetRank,
			Runs: 40, Bits: 1, Seed: int64(i), Trace: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if sum.Terminated > 0 {
		b.ReportMetric(100*float64(sum.TermOS)/float64(sum.Terminated), "os_pct")
		b.ReportMetric(100*float64(sum.TermMPI+sum.TermHang)/float64(sum.Terminated), "mpi_pct")
		b.ReportMetric(100*float64(sum.TermSlave)/float64(sum.Terminated), "slave_pct")
	}
}

// BenchmarkFig6_Outcomes runs a small outcome campaign per application and
// reports the benign/SDC/terminated percentages.
func BenchmarkFig6_Outcomes(b *testing.B) {
	for _, name := range apps.Names() {
		app := mustApp(b, name)
		b.Run(name, func(b *testing.B) {
			var sum *campaign.Summary
			for i := 0; i < b.N; i++ {
				var err error
				sum, err = campaign.Run(campaign.Config{
					Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
					Ops: app.DefaultOps, TargetRank: app.TargetRank,
					Runs: 30, Bits: 1, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			inj := float64(sum.Injected)
			b.ReportMetric(100*float64(sum.Benign)/inj, "benign_pct")
			b.ReportMetric(100*float64(sum.SDC)/inj, "sdc_pct")
			b.ReportMetric(100*float64(sum.Detected)/inj, "detected_pct")
			b.ReportMetric(100*float64(sum.Terminated)/inj, "terminated_pct")
		})
	}
}

// BenchmarkFig7_TaintTimeline measures one traced CLAMR injection run with
// tainted-byte sampling and reports the final tainted-byte count.
func BenchmarkFig7_TaintTimeline(b *testing.B) {
	app := mustApp(b, "clamr")
	var last int64
	for i := 0; i < b.N; i++ {
		points, _, err := campaign.Timeline(campaign.TimelineConfig{
			Prog: app.Prog, WorldSize: 1, Ops: app.DefaultOps,
			N: 300, Bits: 1, Seed: 2, SampleInterval: 10_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) > 0 {
			last = points[len(points)-1].TaintedBytes
		}
	}
	b.ReportMetric(float64(last), "final_tainted_bytes")
}

// BenchmarkFig8Fig9_TaintedMemOps runs a traced CLAMR campaign and reports
// the mean tainted reads and writes per run (the Figs. 8/9 distributions).
func BenchmarkFig8Fig9_TaintedMemOps(b *testing.B) {
	app := mustApp(b, "clamr")
	var sum *campaign.Summary
	for i := 0; i < b.N; i++ {
		var err error
		sum, err = campaign.Run(campaign.Config{
			Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
			Ops: app.DefaultOps, TargetRank: 0,
			Runs: 25, Bits: 1, Seed: int64(i), Trace: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum.ReadsHist.Mean(), "mean_tainted_reads")
	b.ReportMetric(sum.WritesHist.Mean(), "mean_tainted_writes")
	b.ReportMetric(sum.ReadsHist.Max(), "max_tainted_reads")
	b.ReportMetric(sum.WritesHist.Max(), "max_tainted_writes")
}

// BenchmarkFig10_Overhead times the four Fig. 10 configurations for Matvec
// and CLAMR. The b.N loop runs complete supervised executions; the reported
// ns/op of the sub-benchmarks are the Fig. 10 bars.
func BenchmarkFig10_Overhead(b *testing.B) {
	for _, name := range []string{"matvec", "clamr"} {
		app := mustApp(b, name)
		rank := app.TargetRank
		if rank < 0 {
			rank = 0
		}
		mkSpec := func(inject, traceOn bool) *core.Spec {
			if !inject && !traceOn {
				return nil
			}
			cond := core.Condition(core.Deterministic{N: 1000})
			if !inject {
				cond = core.Deterministic{N: 1 << 62}
			}
			return &core.Spec{
				Target: app.Name, Ops: app.DefaultOps, TargetRank: rank,
				Cond: cond, Inj: core.IdentityInjector{Bits: 8}, Seed: 3,
				Trace: traceOn,
			}
		}
		cases := []struct {
			cfg     string
			inject  bool
			traceOn bool
		}{
			{"baseline", false, false},
			{"inject", true, false},
			{"trace", false, true},
			{"inject+trace", true, true},
		}
		for _, c := range cases {
			b.Run(name+"/"+c.cfg, func(b *testing.B) {
				spec := mkSpec(c.inject, c.traceOn)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := core.Run(core.RunConfig{
						Prog: app.Prog, WorldSize: app.WorldSize, Spec: spec,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Terms[0].Abnormal() {
						b.Fatalf("abnormal: %v", res.Terms[0])
					}
				}
			})
		}
	}
}

// BenchmarkObsOverhead is the telemetry ablation: the same kmeans guest run
// with telemetry disabled (nil registry — the default for every existing
// call site) and enabled. Because the vm flushes its counters into the
// registry once at run end rather than instrumenting the interpreter loop,
// the two configurations should be within noise of each other, and the
// disabled path must not add a single allocation per run beyond the
// uninstrumented baseline.
func BenchmarkObsOverhead(b *testing.B) {
	app := mustApp(b, "kmeans")
	for _, enabled := range []bool{false, true} {
		name := "obs-off"
		if enabled {
			name = "obs-on"
		}
		b.Run(name, func(b *testing.B) {
			var reg *obs.Registry
			if enabled {
				reg = obs.NewRegistry()
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := vm.New(app.Prog, vm.Config{Obs: reg})
				if term := m.Run(); term.Abnormal() {
					b.Fatal(term)
				}
			}
			if enabled && reg.Counter("vm_instructions_total").Value() == 0 {
				b.Fatal("enabled telemetry recorded nothing")
			}
		})
	}
}

// TestObsDisabledNoAlloc guards the zero-cost claim: the telemetry seams in
// the engine add no allocations when disabled. The guest itself allocates
// (translation cache, shadow pages), and those allocations are deterministic
// for a fixed program, so the test measures the whole-run delta between
// telemetry enabled and disabled — flush-at-end design means even the
// enabled path should add almost nothing, and the disabled path exactly
// nothing. (The per-op zero-allocation guarantee of nil instruments is
// pinned separately in internal/obs.)
func TestObsDisabledNoAlloc(t *testing.T) {
	app, err := apps.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	measure := func(reg *obs.Registry) float64 {
		return testing.AllocsPerRun(5, func() {
			m := vm.New(app.Prog, vm.Config{Obs: reg})
			if term := m.Run(); term.Abnormal() {
				t.Fatal(term)
			}
		})
	}
	disabled := measure(nil)
	reg := obs.NewRegistry() // instruments created during the warm-up call
	enabled := measure(reg)
	if delta := enabled - disabled; delta > 8 {
		t.Errorf("telemetry adds %.0f allocs/run (disabled %.0f, enabled %.0f); flush-at-end should add ~0", delta, disabled, enabled)
	}
}

// BenchmarkAblation_Instrumentation compares the paper's JIT-style targeted
// instrumentation (helper calls inserted only in front of targeted
// instructions at translation time) with the F-SEFI-style alternative of
// instrumenting every instruction and checking the target dynamically.
// The gap is the paper's "efficient" design goal, quantified.
func BenchmarkAblation_Instrumentation(b *testing.B) {
	app := mustApp(b, "kmeans")
	target := isa.OpFAdd

	run := func(b *testing.B, hook func(m *vm.Machine) tcg.InstrumentHook) {
		for i := 0; i < b.N; i++ {
			m := vm.New(app.Prog, vm.Config{})
			if hook != nil {
				m.Trans.AddHook(hook(m))
			}
			if term := m.Run(); term.Abnormal() {
				b.Fatalf("abnormal: %v", term)
			}
		}
	}

	b.Run("uninstrumented", func(b *testing.B) { run(b, nil) })

	b.Run("jit-targeted", func(b *testing.B) {
		run(b, func(m *vm.Machine) tcg.InstrumentHook {
			var execs uint64
			id := m.RegisterHelper(func(mm *vm.Machine, op *tcg.Op) { execs++ })
			return func(ins isa.Instr, pc uint64) []tcg.Op {
				if ins.Op != target {
					return nil
				}
				return []tcg.Op{{Kind: tcg.KHelper, Helper: id}}
			}
		})
	})

	b.Run("instrument-all", func(b *testing.B) {
		run(b, func(m *vm.Machine) tcg.InstrumentHook {
			var execs uint64
			id := m.RegisterHelper(func(mm *vm.Machine, op *tcg.Op) {
				// The dynamic check every injector without JIT placement
				// must perform on every single instruction.
				if op.GuestOp == target {
					execs++
				}
			})
			return func(ins isa.Instr, pc uint64) []tcg.Op {
				return []tcg.Op{{Kind: tcg.KHelper, Helper: id}}
			}
		})
	})
}

// BenchmarkSharedVsPrivateCache is the shared-translation-cache ablation: a
// 100-run CLAMR campaign with the campaign-wide base cache (default) versus
// per-machine private translator caches (the pre-shared-cache behaviour).
// Identical seeds produce identical Summary outcomes in both modes; the
// difference is translation work, reported as translated blocks and emitted
// micro-ops per campaign. The acceptance bar is a >= 5x reduction with the
// shared cache.
func BenchmarkSharedVsPrivateCache(b *testing.B) {
	app := mustApp(b, "clamr")
	var summaries [2]*campaign.Summary
	for mode, private := range map[string]bool{"shared": false, "private": true} {
		b.Run(mode, func(b *testing.B) {
			var translated, opsEmitted, baseHits float64
			for i := 0; i < b.N; i++ {
				reg := obs.NewRegistry()
				sum, err := campaign.Run(campaign.Config{
					Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
					Ops: app.DefaultOps, TargetRank: 0,
					Runs: 100, Bits: 1, Seed: 20200355,
					NoSharedCache: private,
					Obs:           reg,
				})
				if err != nil {
					b.Fatal(err)
				}
				idx := 0
				if private {
					idx = 1
				}
				summaries[idx] = sum
				translated = float64(reg.Counter("tcg_translations_total").Value())
				opsEmitted = float64(reg.Counter("tcg_ops_emitted_total").Value())
				baseHits = float64(reg.Counter("tcg_base_hits_total").Value())
			}
			b.ReportMetric(translated, "translated_tbs")
			b.ReportMetric(opsEmitted, "emitted_ops")
			b.ReportMetric(baseHits, "base_hits")
		})
	}
	if s, p := summaries[0], summaries[1]; s != nil && p != nil {
		if s.Benign != p.Benign || s.SDC != p.SDC || s.Detected != p.Detected || s.Terminated != p.Terminated {
			b.Fatalf("shared/private outcome mismatch: %+v vs %+v", s, p)
		}
	}
}

// BenchmarkAblation_ElasticTaint measures the raw engine cost of taint
// tracking (DECAF++-style elastic analysis: pay only when tracing).
func BenchmarkAblation_ElasticTaint(b *testing.B) {
	app := mustApp(b, "lud")
	for _, taintOn := range []bool{false, true} {
		name := "taint-off"
		if taintOn {
			name = "taint-on"
		}
		b.Run(name, func(b *testing.B) {
			var instrs uint64
			for i := 0; i < b.N; i++ {
				m := vm.New(app.Prog, vm.Config{})
				m.TaintEnabled = taintOn
				if term := m.Run(); term.Abnormal() {
					b.Fatal(term)
				}
				instrs = m.Counters().Instructions
			}
			b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// BenchmarkEngine_RawExecution reports the interpreter's raw speed on the
// app mix, the denominator behind every campaign-scale estimate.
func BenchmarkEngine_RawExecution(b *testing.B) {
	for _, name := range apps.Names() {
		app := mustApp(b, name)
		if app.WorldSize != 1 {
			continue
		}
		b.Run(name, func(b *testing.B) {
			var instrs uint64
			for i := 0; i < b.N; i++ {
				m := vm.New(app.Prog, vm.Config{})
				if term := m.Run(); term.Abnormal() {
					b.Fatal(term)
				}
				instrs += m.Counters().Instructions
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// BenchmarkFastPathVsFull is the dual-loop ablation: the same guest run on
// the specialized taint-free fast loop with micro-op fusion (the default
// engine) versus the pre-dual-loop configuration — every block forced
// through the full taint-aware loop with fusion disabled. The gap is the
// engine speedup this optimization pass delivers on untainted execution,
// which is the state virtually every instruction of every campaign run
// executes in (taint exists only downstream of an injected fault).
// benchLUDN sizes the engine benchmarks' guest workload. The campaign apps
// use DefaultLUDN for fast suites; the engine comparison wants runs long
// enough (~2M guest instructions) that per-run machine construction is noise.
const benchLUDN = 48

func BenchmarkFastPathVsFull(b *testing.B) {
	prog := lang.MustCompile(apps.LUDProgram(benchLUDN))
	configs := []struct {
		name   string
		noFast bool
		fusion bool
	}{
		{"fast+fusion", false, true},
		{"full-nofusion", true, false},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			// Campaign runs share one translation cache (golden run warms it,
			// injected runs reuse it), so the benchmark does too: translation
			// cost would otherwise dilute the engine comparison.
			base := tcg.NewBaseCache(prog)
			base.SetFusion(c.fusion)
			warm := vm.New(prog, vm.Config{NoFastPath: c.noFast, BaseCache: base})
			if term := warm.Run(); term.Abnormal() {
				b.Fatal(term)
			}
			b.ResetTimer()
			var instrs, fastTBs, totalTBs uint64
			for i := 0; i < b.N; i++ {
				m := vm.New(prog, vm.Config{NoFastPath: c.noFast, BaseCache: base})
				if term := m.Run(); term.Abnormal() {
					b.Fatal(term)
				}
				cnt := m.Counters()
				instrs = cnt.Instructions
				fastTBs = cnt.FastPathTBs
				totalTBs = cnt.TBsExecuted
			}
			if c.noFast && fastTBs != 0 {
				b.Fatalf("NoFastPath run counted %d fast-path TBs", fastTBs)
			}
			if !c.noFast && fastTBs != totalTBs {
				b.Fatalf("fast config ran %d of %d TBs on the fast loop", fastTBs, totalTBs)
			}
			b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// BenchmarkFusion isolates the micro-op fusion pass: fast loop in both arms,
// fusion on vs off, with the fused-op count reported so the coverage of the
// two peephole patterns (compare+branch, address+memory) is visible.
func BenchmarkFusion(b *testing.B) {
	prog := lang.MustCompile(apps.LUDProgram(benchLUDN))
	for _, on := range []bool{true, false} {
		name := "fusion-on"
		if !on {
			name = "fusion-off"
		}
		b.Run(name, func(b *testing.B) {
			base := tcg.NewBaseCache(prog)
			base.SetFusion(on)
			warm := vm.New(prog, vm.Config{BaseCache: base})
			if term := warm.Run(); term.Abnormal() {
				b.Fatal(term)
			}
			// Iteration machines serve every block from the shared base, so the
			// fusion count comes from the warming translator.
			fused := warm.Trans.Stats().FusedOps
			if on && fused == 0 {
				b.Fatal("fusion enabled but no ops fused")
			}
			b.ResetTimer()
			var instrs uint64
			for i := 0; i < b.N; i++ {
				m := vm.New(prog, vm.Config{BaseCache: base})
				if term := m.Run(); term.Abnormal() {
					b.Fatal(term)
				}
				instrs = m.Counters().Instructions
			}
			b.ReportMetric(float64(fused), "fused_ops")
			b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// BenchmarkForkVsScratch measures fork-point run multiplexing on a pinned
// late injection site: a single-site LUD campaign (the paper's "after it is
// executed n times" methodology, with n at 90% of the golden execution
// count) run once with copy-on-write world snapshots and once replaying the
// golden prefix from scratch in every run. The forked arm pays the prefix
// once and each run re-executes only the post-injection tail, so the
// throughput gap approaches 1/(1-site_fraction); snap_bytes reports the
// snapshot cache's high-water mark.
func BenchmarkForkVsScratch(b *testing.B) {
	prog := lang.MustCompile(apps.LUDProgram(benchLUDN))
	ops := []isa.Op{isa.OpFAdd, isa.OpFMul, isa.OpFSub}
	golden, err := core.Golden(prog, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	var total uint64
	for _, op := range ops {
		total += golden.Counters[0].PerOp[op]
	}
	site := total * 9 / 10
	if site == 0 {
		b.Fatal("no targeted ops in golden run")
	}
	const runsPer = 40
	for _, noFork := range []bool{false, true} {
		name := "forked"
		if noFork {
			name = "scratch"
		}
		b.Run(name, func(b *testing.B) {
			reg := obs.NewRegistry()
			for i := 0; i < b.N; i++ {
				sum, err := campaign.Run(campaign.Config{
					Name: "lud", Prog: prog, WorldSize: 1,
					Ops: ops, TargetRank: 0,
					Runs: runsPer, Bits: 2, Seed: 99,
					InjectExec: site, NoFork: noFork,
					Obs: reg,
				})
				if err != nil {
					b.Fatal(err)
				}
				if sum.Injected == 0 {
					b.Fatal("campaign injected nothing")
				}
			}
			b.ReportMetric(float64(runsPer*b.N)/b.Elapsed().Seconds(), "runs/sec")
			if !noFork {
				if fb := reg.Counter("campaign_fork_fallbacks_total").Value(); fb > 0 {
					b.ReportMetric(float64(fb), "fallbacks")
				}
				b.ReportMetric(reg.Gauge("campaign_snapshot_cache_bytes_high_water").Value(), "snap_bytes")
			}
		})
	}
}

// BenchmarkAblation_PeepholeOptimizer measures the TCG peephole optimizer's
// effect on raw execution speed (zero-displacement address arithmetic is
// the dominant rewrite in array-heavy guests).
func BenchmarkAblation_PeepholeOptimizer(b *testing.B) {
	app := mustApp(b, "lud")
	for _, on := range []bool{true, false} {
		name := "optimizer-on"
		if !on {
			name = "optimizer-off"
		}
		b.Run(name, func(b *testing.B) {
			var rewrites uint64
			for i := 0; i < b.N; i++ {
				m := vm.New(app.Prog, vm.Config{})
				m.Trans.SetOptimizer(on)
				if term := m.Run(); term.Abnormal() {
					b.Fatal(term)
				}
				rewrites = m.Trans.Stats().OptRewrites
			}
			b.ReportMetric(float64(rewrites), "rewrites")
		})
	}
}
