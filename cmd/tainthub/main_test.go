package main

import (
	"syscall"
	"testing"
	"time"

	"chaser/internal/tainthub"
)

func TestServerServesUntilSignal(t *testing.T) {
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0"}) }()

	// The server binds an ephemeral port we cannot read from here, so this
	// test exercises startup/shutdown; protocol coverage lives in the
	// tainthub package. Give the goroutine a moment to bind, then signal.
	time.Sleep(50 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
}

func TestBadAddr(t *testing.T) {
	if err := run([]string{"-addr", "256.0.0.1:99999"}); err == nil {
		t.Error("bad address accepted")
	}
}

func TestEndToEndAgainstPackageServer(t *testing.T) {
	// Full protocol round trip against the same server implementation the
	// command wraps.
	srv, err := tainthub.NewServer(tainthub.NewLocal(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := tainthub.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	k := tainthub.Key{Src: 1, Dst: 2, Tag: 3}
	if err := c.Publish(k, 0, []uint8{9}); err != nil {
		t.Fatal(err)
	}
	if masks, ok, err := c.Poll(k, 0); err != nil || !ok || masks[0] != 9 {
		t.Fatalf("poll = %v %v %v", masks, ok, err)
	}
}
