package main

import (
	"net"
	"os"
	"path/filepath"

	"syscall"
	"testing"
	"time"

	"chaser/internal/tainthub"
)

func TestServerServesUntilSignal(t *testing.T) {
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0"}) }()

	// The server binds an ephemeral port we cannot read from here, so this
	// test exercises startup/shutdown; protocol coverage lives in the
	// tainthub package. Give the goroutine a moment to bind, then signal.
	time.Sleep(50 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
}

func TestBadAddr(t *testing.T) {
	if err := run([]string{"-addr", "256.0.0.1:99999"}); err == nil {
		t.Error("bad address accepted")
	}
}

func TestEndToEndAgainstPackageServer(t *testing.T) {
	// Full protocol round trip against the same server implementation the
	// command wraps.
	srv, err := tainthub.NewServer(tainthub.NewLocal(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := tainthub.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	k := tainthub.Key{Src: 1, Dst: 2, Tag: 3}
	if err := c.Publish(tainthub.ReqID{}, k, 0, []uint8{9}); err != nil {
		t.Fatal(err)
	}
	if masks, ok, err := c.Poll(tainthub.ReqID{}, k, 0); err != nil || !ok || masks[0] != 9 {
		t.Fatalf("poll = %v %v %v", masks, ok, err)
	}
}

// TestDurableShutdownSnapshot runs the command with -wal, feeds it state
// over TCP, SIGTERMs it, and verifies a fresh instance recovers that state
// from the final snapshot — the operator-facing durability contract.
func TestDurableShutdownSnapshot(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "hub.wal")

	// Reserve an address so the test can reach the ephemeral server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-wal", walPath, "-snapshot-interval", "0"})
	}()

	var c *tainthub.Client
	for i := 0; ; i++ {
		c, err = tainthub.Dial(addr)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("server never came up on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	k := tainthub.Key{Src: 1, Dst: 2, Tag: 3}
	if err := c.Publish(tainthub.ReqID{Client: 1, Seq: 1}, k, 0, []uint8{0x42}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
	if _, err := os.Stat(walPath + ".snap"); err != nil {
		t.Fatalf("no final snapshot: %v", err)
	}

	// A fresh process recovers the published entry.
	h, err := tainthub.OpenDurable(walPath, tainthub.DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if masks, ok, _ := h.Poll(tainthub.ReqID{Client: 2, Seq: 1}, k, 0); !ok || masks[0] != 0x42 {
		t.Fatalf("state lost across shutdown: masks=%v ok=%v", masks, ok)
	}
}

// TestCorruptWALRefused: the command must refuse structurally corrupt
// durable state instead of serving an empty hub.
func TestCorruptWALRefused(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "hub.wal")
	if err := os.WriteFile(walPath+".snap", []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-wal", walPath}); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}
