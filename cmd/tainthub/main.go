// Command tainthub runs a standalone TaintHub server: the head-node service
// that coordinates MPI message taint between Chaser instances (paper
// Fig. 5).
//
// Usage:
//
//	tainthub [-addr host:port] [-metrics-addr host:port]
//
// With -metrics-addr, the process also serves Prometheus text-format metrics
// on http://<metrics-addr>/metrics: request/publish/poll counters, RPC
// latency, malformed-request counts, and a live snapshot of hub state.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chaser/internal/obs"
	"chaser/internal/tainthub"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tainthub:", err)
		os.Exit(1)
	}
}

// metricsHandler serves the registry in Prometheus text format, syncing the
// hub's own counters into gauges at scrape time so the exposition reflects
// live hub state without a background poller.
func metricsHandler(reg *obs.Registry, hub tainthub.Hub) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := hub.Stats()
		reg.Gauge("tainthub_statuses_published").Set(float64(st.Published))
		reg.Gauge("tainthub_status_polls").Set(float64(st.Polls))
		reg.Gauge("tainthub_status_poll_hits").Set(float64(st.Hits))
		reg.Gauge("tainthub_statuses_pending").Set(float64(st.Pending))
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

func run(args []string) error {
	fs := flag.NewFlagSet("tainthub", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus metrics on http://<addr>/metrics (empty = disabled)")
	idleTimeout := fs.Duration("idle-timeout", 0, "drop connections idle longer than this (0 = never)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	hub := tainthub.NewLocal()
	srv, err := tainthub.NewServerConfig(hub, *addr, tainthub.ServerConfig{
		Obs: reg, IdleTimeout: *idleTimeout,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("tainthub listening on %s\n", srv.Addr())

	if reg != nil {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metricsHandler(reg, hub))
		hsrv := &http.Server{
			Addr:              *metricsAddr,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := hsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "tainthub: metrics server:", err)
			}
		}()
		defer hsrv.Close()
		fmt.Printf("tainthub metrics on http://%s/metrics\n", *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("tainthub: shutting down")
	return nil
}
