// Command tainthub runs a standalone TaintHub server: the head-node service
// that coordinates MPI message taint between Chaser instances (paper
// Fig. 5).
//
// Usage:
//
//	tainthub [-addr host:port]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"chaser/internal/tainthub"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tainthub:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tainthub", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv, err := tainthub.NewServer(tainthub.NewLocal(), *addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("tainthub listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("tainthub: shutting down")
	return nil
}
