// Command tainthub runs a standalone TaintHub server: the head-node service
// that coordinates MPI message taint between Chaser instances (paper
// Fig. 5).
//
// Usage:
//
//	tainthub [-addr host:port] [-metrics-addr host:port] [-wal path] [-wire auto|json|binary]
//
// With -wal, every mutation is written ahead to a crash-safe log and the
// process periodically snapshots its state; a restarted tainthub recovers
// the exact pending taint and reply caches a kill -9 interrupted, so
// in-flight campaigns ride out the outage through their clients' retries.
// SIGTERM/SIGINT take a final snapshot before exiting.
//
// With -metrics-addr, the process also serves Prometheus text-format metrics
// on http://<metrics-addr>/metrics: request/publish/poll counters, RPC
// latency, malformed-request counts, WAL size, and a live snapshot of hub
// state.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chaser/internal/obs"
	"chaser/internal/tainthub"
	"chaser/internal/tainthub/codec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tainthub:", err)
		os.Exit(1)
	}
}

// statsHub is the slice of hub shared by Local and Durable that the
// metrics handler needs.
type statsHub interface {
	Stats() tainthub.Stats
}

// metricsHandler serves the registry in Prometheus text format, syncing the
// hub's own counters into gauges at scrape time so the exposition reflects
// live hub state without a background poller.
func metricsHandler(reg *obs.Registry, hub statsHub, walSize func() int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := hub.Stats()
		reg.Gauge("tainthub_statuses_published").Set(float64(st.Published))
		reg.Gauge("tainthub_status_polls").Set(float64(st.Polls))
		reg.Gauge("tainthub_status_poll_hits").Set(float64(st.Hits))
		reg.Gauge("tainthub_statuses_pending").Set(float64(st.Pending))
		reg.Gauge("tainthub_dedup_hits").Set(float64(st.DedupHits))
		reg.Gauge("tainthub_evicted").Set(float64(st.Evicted))
		if walSize != nil {
			reg.Gauge("tainthub_wal_size_bytes").Set(float64(walSize()))
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

func run(args []string) error {
	fs := flag.NewFlagSet("tainthub", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus metrics on http://<addr>/metrics (empty = disabled)")
	idleTimeout := fs.Duration("idle-timeout", 0, "drop connections idle longer than this (0 = never)")
	wal := fs.String("wal", "", "write-ahead log path; enables crash-safe durability (empty = in-memory only)")
	snapInterval := fs.Duration("snapshot-interval", 30*time.Second, "periodic snapshot+WAL-truncation interval (needs -wal; 0 = only at shutdown)")
	maxPending := fs.Int("max-pending", 0, "max stored entries per namespace; publishes over it get a retryable busy response (0 = unlimited)")
	maxPendingBytes := fs.Int64("max-pending-bytes", 0, "max stored mask bytes per namespace (0 = unlimited)")
	maxPayload := fs.Int("max-payload", 0, "max mask bytes in one publish; larger ones are rejected (0 = unlimited)")
	ttl := fs.Duration("ttl", 0, "evict entries older than this (orphans of crashed ranks; 0 = never)")
	wire := fs.String("wire", "auto", "accepted wire format: auto (per-connection autodetect) | json | binary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	wireFmt, err := codec.ParseFormat(*wire)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	lim := tainthub.Limits{
		MaxPending:      *maxPending,
		MaxPendingBytes: *maxPendingBytes,
		MaxPayload:      *maxPayload,
		TTL:             *ttl,
	}

	var hub tainthub.Hub
	var durable *tainthub.Durable
	var walSize func() int64
	if *wal != "" {
		d, err := tainthub.OpenDurable(*wal, tainthub.DurableConfig{Limits: lim, Obs: reg})
		if err != nil {
			return err
		}
		durable = d
		hub = d
		walSize = d.WALSize
		defer durable.Close()
		fmt.Printf("tainthub: recovered %d records from %s\n", d.RecoveredRecords(), *wal)
	} else {
		hub = tainthub.NewLocalLimits(lim, reg)
	}

	srv, err := tainthub.NewServerConfig(hub, *addr, tainthub.ServerConfig{
		Obs: reg, IdleTimeout: *idleTimeout, Wire: wireFmt,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("tainthub listening on %s\n", srv.Addr())

	if reg != nil {
		mlis, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", metricsHandler(reg, hub, walSize))
		hsrv := &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := hsrv.Serve(mlis); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "tainthub: metrics server:", err)
			}
		}()
		defer hsrv.Close()
		fmt.Printf("tainthub metrics on http://%s/metrics\n", mlis.Addr())
	}

	// Periodic snapshots bound recovery time and WAL growth.
	stopSnap := make(chan struct{})
	if durable != nil && *snapInterval > 0 {
		go func() {
			t := time.NewTicker(*snapInterval)
			defer t.Stop()
			for {
				select {
				case <-stopSnap:
					return
				case <-t.C:
					if err := durable.Snapshot(); err != nil {
						fmt.Fprintln(os.Stderr, "tainthub: snapshot:", err)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stopSnap)
	fmt.Println("tainthub: shutting down")
	// Drain connections first so in-flight mutations land in the final
	// snapshot, then close the hub (deferred Close snapshots and fsyncs).
	if err := srv.Close(); err != nil {
		return err
	}
	if durable != nil {
		if err := durable.Close(); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		fmt.Println("tainthub: final snapshot written")
	}
	return nil
}
