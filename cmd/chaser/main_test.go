package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chaser/internal/trace"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestList(t *testing.T) {
	out, err := runCmd(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"matvec", "clamr", "bfs", "kmeans", "lud"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q:\n%s", want, out)
		}
	}
}

func TestGoldenRun(t *testing.T) {
	out, err := runCmd(t, "-app", "bfs", "-golden")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rank 0: exited(0)") {
		t.Errorf("out = %s", out)
	}
}

func TestDeterministicInjection(t *testing.T) {
	out, err := runCmd(t, "-app", "kmeans", "-n", "500", "-bits", "2", "-seed", "9")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "injected:") {
		t.Errorf("no injection in output:\n%s", out)
	}
}

func TestTraceToFile(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "prop.jsonl")
	out, err := runCmd(t, "-app", "clamr", "-n", "200", "-trace", "-trace-out", logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "propagation:") {
		t.Errorf("no propagation summary:\n%s", out)
	}
	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	col, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if col.TotalReads()+col.TotalWrites() == 0 {
		t.Error("written propagation log is empty")
	}
}

func TestProbabilisticAndGroupModels(t *testing.T) {
	if _, err := runCmd(t, "-app", "lud", "-prob", "0.001"); err != nil {
		t.Errorf("prob run: %v", err)
	}
	if _, err := runCmd(t, "-app", "lud", "-group", "100:200", "-count", "3"); err != nil {
		t.Errorf("group run: %v", err)
	}
}

func TestCustomOps(t *testing.T) {
	out, err := runCmd(t, "-app", "clamr", "-ops", "fmul", "-n", "100")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fmul") {
		t.Errorf("injection record missing fmul:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	tests := [][]string{
		{}, // no app
		{"-app", "nosuch", "-n", "1"},
		{"-app", "bfs"}, // no model
		{"-app", "bfs", "-ops", "bogus", "-n", "1"},
		{"-app", "bfs", "-group", "xx", "-n", "0"},
	}
	for _, args := range tests {
		if _, err := runCmd(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestExecTraceOnCrash(t *testing.T) {
	// Force a crash with a 64-bit flip into a load's base register and
	// check the post-mortem trace is printed.
	out, err := runCmd(t, "-app", "matvec", "-ops", "ld", "-n", "50",
		"-bits", "40", "-seed", "3", "-exec-trace", "8")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "killed(SIGSEGV)") {
		t.Skipf("this seed did not crash; output:\n%s", out)
	}
	if !strings.Contains(out, "last instructions on rank") {
		t.Errorf("no exec trace printed:\n%s", out)
	}
}

func TestUserProgramGolden(t *testing.T) {
	out, err := runCmd(t, "-prog", "../../examples/guest_programs/pi.gl", "-golden")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "exited(0)") {
		t.Errorf("pi.gl golden failed:\n%s", out)
	}
	out, err = runCmd(t, "-prog", "../../examples/guest_programs/ring.gl", "-world", "4", "-golden")
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if !strings.Contains(out, "exited(0)") {
			t.Errorf("ring.gl rank %d failed:\n%s", r, out)
		}
	}
}

func TestUserProgramInjection(t *testing.T) {
	out, err := runCmd(t, "-prog", "../../examples/guest_programs/pi.gl",
		"-ops", "fadd,fdiv", "-n", "500", "-bits", "1", "-seed", "3", "-trace")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "injected:") {
		t.Errorf("no injection:\n%s", out)
	}
	// -prog without -ops or -golden is an error.
	if _, err := runCmd(t, "-prog", "../../examples/guest_programs/pi.gl", "-n", "5"); err == nil {
		t.Error("-prog without -ops accepted")
	}
	if _, err := runCmd(t, "-prog", "/nonexistent.gl", "-golden"); err == nil {
		t.Error("missing file accepted")
	}
}
