// Command chaser runs one guest application under the Chaser fault-injection
// framework and reports the outcome, the injection record, and (with
// -trace) the fault-propagation summary and log.
//
// Examples:
//
//	chaser -list
//	chaser -app clamr -n 1000 -bits 1 -trace
//	chaser -app matvec -ops mov,ld,st -n 500 -rank 0 -trace -trace-out prop.jsonl
//	chaser -app kmeans -prob 0.0005
//	chaser -app lud -group 100:50 -count 5
//	chaser -app matvec -hub 127.0.0.1:7070 -n 200 -trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"chaser/internal/apps"
	"chaser/internal/core"
	"chaser/internal/isa"
	"chaser/internal/lang"
	"chaser/internal/obs"
	"chaser/internal/tainthub"
	"chaser/internal/tainthub/codec"
)

// progName derives a process name from a source path (base without ext).
func progName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chaser:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("chaser", flag.ContinueOnError)
	list := fs.Bool("list", false, "list available applications")
	appName := fs.String("app", "", "application to run (see -list)")
	progPath := fs.String("prog", "", "guest-language source file to run instead of a built-in app")
	world := fs.Int("world", 1, "world size for -prog")
	opsFlag := fs.String("ops", "", "comma-separated target opcodes (default: the app's paper targets)")
	detN := fs.Uint64("n", 0, "deterministic model: inject at the n-th execution")
	prob := fs.Float64("prob", 0, "probabilistic model: per-execution injection probability")
	group := fs.String("group", "", "group model: start:every")
	count := fs.Int("count", 1, "maximum number of injections")
	bits := fs.Int("bits", 1, "bits to flip per injection")
	rank := fs.Int("rank", -1, "target rank (-1 = app default)")
	seed := fs.Int64("seed", 1, "rng seed")
	traceOn := fs.Bool("trace", false, "enable fault propagation tracing")
	traceOut := fs.String("trace-out", "", "write the propagation log (JSON lines) to this file")
	spanTrace := fs.String("span-trace", "", "write a Chrome trace-event JSON of the run's spans to this file (chrome://tracing / Perfetto)")
	hubAddr := fs.String("hub", "", "TaintHub server address (default: in-process hub)")
	hubWire := fs.String("wire", "auto", "hub wire format: auto (binary) | json | binary")
	golden := fs.Bool("golden", false, "run without any injection")
	execTrace := fs.Int("exec-trace", 0, "record the last N instructions per rank and print them on a crash")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, app := range apps.All() {
			ops := make([]string, len(app.DefaultOps))
			for i, op := range app.DefaultOps {
				ops[i] = op.String()
			}
			fmt.Fprintf(out, "%-8s ranks=%d ops=%s  %s\n",
				app.Name, app.WorldSize, strings.Join(ops, ","), app.Description)
		}
		return nil
	}
	var app apps.App
	switch {
	case *progPath != "":
		src, err := os.ReadFile(*progPath)
		if err != nil {
			return err
		}
		prog, err := lang.ParseAndCompile(progName(*progPath), string(src))
		if err != nil {
			return err
		}
		app = apps.App{Name: prog.Name, Prog: prog, WorldSize: *world, TargetRank: -1}
		if *opsFlag == "" && !*golden {
			return fmt.Errorf("-prog needs -ops (or -golden)")
		}
	case *appName != "":
		var err error
		app, err = apps.ByName(*appName)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -app or -prog (or -list)")
	}

	cfg := core.RunConfig{Prog: app.Prog, WorldSize: app.WorldSize, ExecTraceDepth: *execTrace}
	var tracer *obs.Tracer
	if *spanTrace != "" {
		tracer = obs.NewTracer(0)
		cfg.Tracer = tracer
	}
	if *hubAddr != "" {
		wireFmt, err := codec.ParseFormat(*hubWire)
		if err != nil {
			return err
		}
		client, err := tainthub.DialConfig(*hubAddr, tainthub.ClientConfig{Wire: wireFmt})
		if err != nil {
			return err
		}
		defer client.Close()
		cfg.Hub = client
	}

	if !*golden {
		spec := &core.Spec{
			Target: app.Name,
			Ops:    app.DefaultOps,
			Bits:   *bits,
			Seed:   *seed,
			Trace:  *traceOn,
		}
		if *opsFlag != "" {
			spec.Ops = nil
			for _, name := range strings.Split(*opsFlag, ",") {
				op := isa.OpByName(strings.TrimSpace(name))
				if op == isa.OpInvalid {
					return fmt.Errorf("unknown opcode %q", name)
				}
				spec.Ops = append(spec.Ops, op)
			}
		}
		spec.TargetRank = app.TargetRank
		if *rank >= 0 {
			spec.TargetRank = *rank
		}
		if spec.TargetRank < 0 {
			spec.TargetRank = 0
		}
		spec.MaxInjections = *count
		switch {
		case *prob > 0:
			spec.Cond = core.Probabilistic{P: *prob}
		case *group != "":
			var start, every uint64
			if _, err := fmt.Sscanf(*group, "%d:%d", &start, &every); err != nil {
				return fmt.Errorf("bad -group %q (want start:every)", *group)
			}
			spec.Cond = core.Group{Start: start, Every: every}
		case *detN > 0:
			spec.Cond = core.Deterministic{N: *detN}
		default:
			return fmt.Errorf("pick an injection model: -n, -prob, or -group (or -golden)")
		}
		cfg.Spec = spec
	}

	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	if tracer != nil {
		f, err := os.Create(*spanTrace)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "span trace written to %s (%d spans)\n", *spanTrace, tracer.Len())
	}
	for r, term := range res.Terms {
		fmt.Fprintf(out, "rank %d: %s (%d instructions)\n", r, term, res.Counters[r].Instructions)
		if term.Abnormal() && len(res.ExecTraces) > r && res.ExecTraces[r] != "" {
			fmt.Fprintf(out, "last instructions on rank %d:\n%s", r, res.ExecTraces[r])
		}
	}
	for _, rec := range res.Records {
		fmt.Fprintf(out, "injected: %s\n", rec)
	}
	if cfg.Spec != nil && !res.Injected() && !*golden {
		fmt.Fprintln(out, "no injection fired (condition never met)")
	}
	if *traceOn {
		if n := res.Trace.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr,
				"chaser: warning: %d propagation events exceeded the in-memory cap and were dropped (counts remain exact; raise MaxTraceEvents to keep more)\n", n)
		}
		fmt.Fprintf(out, "propagation: %d tainted reads, %d tainted writes, cross-rank=%v\n",
			res.Trace.TotalReads(), res.Trace.TotalWrites(), res.Trace.Propagated())
		for _, region := range []string{"heap", "stack", "data"} {
			if rc, ok := res.Trace.Regions()[region]; ok {
				fmt.Fprintf(out, "  %-5s %d tainted reads, %d tainted writes\n", region, rc.Reads, rc.Writes)
			}
		}
		for _, cr := range res.Trace.CrossRank() {
			fmt.Fprintf(out, "  tainted message rank %d -> rank %d (tag %d, %d tainted bytes)\n",
				cr.Src, cr.Dst, cr.Tag, cr.TaintedBytes)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			if _, err := res.Trace.WriteTo(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "propagation log written to %s (%d events)\n",
				*traceOut, len(res.Trace.Events()))
		}
	}
	return nil
}
