// Command campaign regenerates every table and figure of the paper's
// evaluation (Section IV) against the simulated testbed.
//
// Usage:
//
//	campaign -experiment all
//	campaign -experiment fig6 -runs 3000
//	campaign -experiment table3 -runs 5000
//	campaign -experiment fig7
//	campaign -experiment fig10
//
// Run counts default to quick settings; raise -runs toward the paper's
// 3000-5000 for statistically tighter numbers.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"chaser/internal/apps"
	"chaser/internal/campaign"
	"chaser/internal/core"
	"chaser/internal/injectors"
	"chaser/internal/isa"
	"chaser/internal/lang"
	"chaser/internal/obs"
	"chaser/internal/server"
	"chaser/internal/stats"
	"chaser/internal/tainthub"
	"chaser/internal/tainthub/codec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

type options struct {
	runs     int
	seed     int64
	parallel int
	bits     int
	csvDir   string

	obs         *obs.Registry
	tracer      *obs.Tracer
	progress    bool
	observatory *campaign.Observatory

	// Fields of the fault-tolerant "run" experiment.
	app        string
	journal    string
	resume     string
	runTimeout time.Duration
	hubAddr    string
	hubPolicy  core.HubPolicy
	hubWire    codec.Format

	// Fork-point run multiplexing knobs (run and sweep experiments).
	injectExec  uint64
	noFork      bool
	snapCacheMB int64

	// Control-plane client fields (submit and watch experiments).
	chaserd    string
	campaignID string
	shards     int
	tenant     string
}

// instrument attaches the process-wide telemetry sinks to one campaign
// config; a no-op when no -metrics-out/-trace-out/-progress flag was given.
func (o options) instrument(cfg campaign.Config) campaign.Config {
	cfg.Obs = o.obs
	cfg.Tracer = o.tracer
	if o.progress {
		name := cfg.Name
		cfg.Progress = func(p campaign.ProgressInfo) {
			fmt.Fprintf(os.Stderr,
				"[%s] %d/%d runs, %.1f runs/s, benign=%d sdc=%d detected=%d terminated=%d, elapsed=%s\n",
				name, p.Done, p.Total, p.RunsPerSec,
				p.Benign, p.SDC, p.Detected, p.Terminated, p.Elapsed.Round(100*time.Millisecond))
		}
	}
	if o.observatory != nil {
		cfg = o.observatory.Instrument(cfg)
	}
	return cfg
}

// writeTelemetry flushes the collected metrics and trace to the requested
// files. A ".json" metrics path selects the JSON snapshot; anything else gets
// Prometheus text exposition. The trace file is Chrome trace-event JSON,
// loadable in chrome://tracing or Perfetto.
func writeTelemetry(o options, metricsPath, tracePath string) error {
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if strings.HasSuffix(metricsPath, ".json") {
			err = o.obs.WriteJSON(f)
		} else {
			err = o.obs.WritePrometheus(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		err = o.tracer.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		if n := o.tracer.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "campaign: warning: %d trace spans dropped (recorder full)\n", n)
		}
	}
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	exp := fs.String("experiment", "all", "table1|table2|table3|fig6|fig7|fig8|fig9|fig10|sweep|perop|json|run|all")
	runs := fs.Int("runs", 400, "injection runs per application")
	seed := fs.Int64("seed", 20200355, "campaign seed")
	parallel := fs.Int("parallel", 0, "parallel workers (0 = GOMAXPROCS)")
	bits := fs.Int("bits", 1, "bits flipped per injection")
	csvDir := fs.String("csv", "", "also write per-run outcome CSVs (fig6) into this directory")
	metricsOut := fs.String("metrics-out", "", "write metrics on exit (.json suffix = JSON snapshot, otherwise Prometheus text)")
	metricsAddr := fs.String("metrics-addr", "", "serve the live observatory dashboard (/metrics /progress /runs /events) on this address")
	hold := fs.Duration("hold", 0, "keep serving the dashboard this long after the experiments finish (requires -metrics-addr)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON file on exit (chrome://tracing / Perfetto)")
	progress := fs.Bool("progress", false, "print live campaign progress to stderr")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile on exit to this file")
	appName := fs.String("app", "matvec", "application for -experiment run")
	journal := fs.String("journal", "", "checkpoint journal for -experiment run (written as runs complete)")
	resume := fs.String("resume", "", "resume -experiment run from this journal, skipping completed runs")
	runTimeout := fs.Duration("run-timeout", 0, "wall-clock watchdog per run (0 = no watchdog)")
	injectExec := fs.Uint64("inject-exec", 0, "pin every run's injection to this execution count of the targeted ops (0 = random per run; >0 enables fork-point multiplexing for -experiment run)")
	noFork := fs.Bool("no-fork", false, "disable fork-point run multiplexing (replay the golden prefix in every run)")
	snapCacheMB := fs.Int64("snap-cache-mb", 0, "world-snapshot cache cap in MiB for fork-point multiplexing (0 = default 256)")
	hubAddr := fs.String("hub", "", "shared TaintHub server address (default: in-process hub)")
	hubPolicy := fs.String("hub-policy", "degrade", "on hub failure: degrade (proceed untainted) | fail (fail the run)")
	hubWire := fs.String("wire", "auto", "hub wire format: auto (binary) | json | binary")
	chaserdAddr := fs.String("chaserd", "", "chaserd control-plane URL for -experiment submit/watch (comma-separated peers for an HA pair; the client fails over)")
	campaignID := fs.String("campaign", "", "campaign ID for -experiment watch")
	shards := fs.Int("shards", 0, "shard count for -experiment submit (0 = server default)")
	tenant := fs.String("tenant", "", "tenant namespace for -experiment submit (empty = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy := core.HubDegrade
	switch *hubPolicy {
	case "degrade":
	case "fail":
		policy = core.HubFailRun
	default:
		return fmt.Errorf("unknown -hub-policy %q (want degrade or fail)", *hubPolicy)
	}
	wireFmt, err := codec.ParseFormat(*hubWire)
	if err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "campaign: writing heap profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "campaign: writing heap profile:", err)
			}
		}()
	}
	o := options{
		runs: *runs, seed: *seed, parallel: *parallel, bits: *bits, csvDir: *csvDir,
		progress: *progress,
		app:      *appName, journal: *journal, resume: *resume,
		runTimeout: *runTimeout, hubAddr: *hubAddr, hubPolicy: policy, hubWire: wireFmt,
		injectExec: *injectExec, noFork: *noFork, snapCacheMB: *snapCacheMB,
		chaserd: *chaserdAddr, campaignID: *campaignID, shards: *shards, tenant: *tenant,
	}
	if *metricsOut != "" || *metricsAddr != "" {
		o.obs = obs.NewRegistry()
	}
	if *traceOut != "" {
		o.tracer = obs.NewTracer(0)
	}
	if *metricsAddr != "" {
		o.observatory = campaign.NewObservatory(o.obs, obs.NewSink(0), 0)
		lis, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("observatory listener: %w", err)
		}
		hsrv := &http.Server{Handler: o.observatory}
		go func() {
			if err := hsrv.Serve(lis); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "campaign: observatory server:", err)
			}
		}()
		// Graceful teardown: Observatory.Shutdown releases SSE streams and
		// parked long-polls (which would otherwise pin connections past any
		// HTTP drain), then Shutdown(ctx) lets in-flight responses finish.
		defer func() {
			o.observatory.Shutdown()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := hsrv.Shutdown(ctx); err != nil {
				hsrv.Close()
			}
		}()
		fmt.Fprintf(os.Stderr, "campaign: observatory on http://%s/\n", lis.Addr())
	}

	exps := map[string]func(io.Writer, options) error{
		"table1": table1,
		"table2": table2,
		"table3": table3,
		"fig6":   fig6,
		"fig7":   fig7,
		"fig8":   fig89,
		"fig9":   fig89,
		"fig10":  fig10,
		"sweep":  sweep,
		"json":   jsonOut,
		"perop":  perOp,
		"run":    runResumable,
		"submit": submitCampaign,
		"watch":  watchCampaign,
	}
	var runErr error
	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "fig6", "table3", "fig7", "fig8", "fig10"} {
			if err := exps[name](out, o); err != nil {
				runErr = fmt.Errorf("%s: %w", name, err)
				break
			}
			fmt.Fprintln(out)
		}
	} else {
		fn, ok := exps[*exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		runErr = fn(out, o)
	}
	// Telemetry is flushed even when the experiment failed: a partial
	// campaign's metrics are exactly what a post-mortem wants.
	if werr := writeTelemetry(o, *metricsOut, *traceOut); werr != nil && runErr == nil {
		runErr = werr
	}
	if o.observatory != nil {
		o.observatory.Finish()
		if *hold > 0 {
			// Keep the dashboard scrapeable after the last run: CI smoke
			// tests and humans both want to inspect the final state.
			// SIGINT/SIGTERM end the hold early and fall through to the
			// graceful drain above, so connected SSE/long-poll clients get
			// clean stream ends instead of resets.
			fmt.Fprintf(os.Stderr, "campaign: holding the observatory for %s\n", *hold)
			sigc := make(chan os.Signal, 1)
			signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
			select {
			case <-time.After(*hold):
			case sig := <-sigc:
				fmt.Fprintf(os.Stderr, "campaign: %s; draining the observatory\n", sig)
			}
			signal.Stop(sigc)
		}
	}
	return runErr
}

// table1 prints the supported fault models (definitional).
func table1(out io.Writer, _ options) error {
	fmt.Fprintln(out, "=== Table I: Chaser supported fault models ===")
	rows := []struct{ model, fn string }{
		{"Probabilistic", "fault injection location is based on a predefined probability distribution function"},
		{"Deterministic", "fault injection location is the exact predefined location"},
		{"Group", "multiple faults are injected"},
	}
	for _, r := range rows {
		fmt.Fprintf(out, "%-15s %s\n", r.model, r.fn)
	}
	// Demonstrate that all three are constructible against the live API.
	_ = core.Probabilistic{P: 0.001}
	_ = core.Deterministic{N: 1000}
	_ = core.Group{Start: 1, Every: 10}
	return nil
}

// table2 measures the injectors' lines of code.
func table2(out io.Writer, _ options) error {
	fmt.Fprintln(out, "=== Table II: lines of code to develop injectors ===")
	fmt.Fprintf(out, "%-26s %10s %10s\n", "InjectorName", "LOC(code)", "LOC(raw)")
	for _, row := range injectors.Table2() {
		fmt.Fprintf(out, "%-26s %10d %10d\n", row.Name, row.Lines, row.Raw)
	}
	fmt.Fprintln(out, "(paper: 97 / 100 / 98 lines)")
	return nil
}

// table3 runs the traced Matvec campaign and prints the termination
// breakdown.
func table3(out io.Writer, o options) error {
	app, err := apps.ByName("matvec")
	if err != nil {
		return err
	}
	sum, err := campaign.Run(o.instrument(campaign.Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: app.TargetRank,
		Runs: o.runs, Bits: o.bits, Seed: o.seed, Trace: true, Parallel: o.parallel,
	}))
	if err != nil {
		return err
	}
	fmt.Fprint(out, sum.TerminationTable())
	fmt.Fprintln(out, "(paper total row: 89.77% / 9.94% / 0.23%; propagation row: 72.77% / 27.23%)")
	return nil
}

// fig6 runs the outcome campaign for every application.
func fig6(out io.Writer, o options) error {
	fmt.Fprintln(out, "=== Fig. 6: fault injection results ===")
	for _, app := range apps.All() {
		sum, err := campaign.Run(o.instrument(campaign.Config{
			Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
			Ops: app.DefaultOps, TargetRank: app.TargetRank,
			Runs: o.runs, Bits: o.bits, Seed: o.seed, Parallel: o.parallel,
			KeepRunOutcomes: o.csvDir != "",
		}))
		if err != nil {
			return fmt.Errorf("%s: %w", app.Name, err)
		}
		fmt.Fprint(out, sum.Report())
		if o.csvDir != "" {
			path := filepath.Join(o.csvDir, app.Name+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := sum.WriteOutcomesCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "  per-run outcomes written to %s\n", path)
		}
	}
	fmt.Fprintln(out, "(CLAMR paper split: 83.71% detected, 11.89% benign-undetected, 4.38% SDC)")
	return nil
}

// fig7 prints tainted-bytes-vs-instructions curves for two CLAMR cases.
func fig7(out io.Writer, o options) error {
	fmt.Fprintln(out, "=== Fig. 7: tainted bytes during propagation (two CLAMR cases) ===")
	// A longer CLAMR run gives the curves room to evolve.
	prog := lang.MustCompile(apps.CLAMRProgram(64, 60))
	app, err := apps.ByName("clamr")
	if err != nil {
		return err
	}
	// Two reproducible cases with pinned corruption masks: a low-mantissa
	// flip that evades the conservation checker and keeps propagating for
	// the whole run (plateau), and a mid-mantissa flip that the checker
	// catches at a later checkpoint (curve ends at detection).
	for i, cse := range []struct {
		n    uint64
		mask uint64
		note string
	}{
		{400, 1 << 2, "low-mantissa flip, survives the checker"},
		{4000, 1 << 30, "mid-mantissa flip, caught by a checkpoint"},
	} {
		points, res, err := campaign.Timeline(campaign.TimelineConfig{
			Prog: prog, WorldSize: 1, Ops: app.DefaultOps,
			N:    cse.n,
			Inj:  injectors.DeterministicInjector{N: cse.n, Mask: cse.mask},
			Seed: o.seed, SampleInterval: 10_000,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "case %d (inject at execution %d, %s): term=%s\n", i+1, cse.n, cse.note, res.Terms[0])
		for _, p := range points {
			bar := int(p.TaintedBytes / 8)
			if bar > 60 {
				bar = 60
			}
			fmt.Fprintf(out, "  %9d instrs %6d tainted bytes %s\n",
				p.Instrs, p.TaintedBytes, strings.Repeat("*", bar))
		}
	}
	fmt.Fprintln(out, "(paper: curves plateau once the fault stops spreading and can drop to zero when tainted bytes are overwritten with clean data)")
	return nil
}

// fig89 runs the traced CLAMR campaign and prints the tainted read/write
// distributions plus the Section IV-C run accounting.
func fig89(out io.Writer, o options) error {
	app, err := apps.ByName("clamr")
	if err != nil {
		return err
	}
	runs := o.runs
	sum, err := campaign.Run(o.instrument(campaign.Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0,
		Runs: runs, Bits: o.bits, Seed: o.seed, Trace: true, Parallel: o.parallel,
	}))
	if err != nil {
		return err
	}
	fmt.Fprint(out, sum.MemOpsReport())
	fmt.Fprintln(out, "(paper, 2973 runs: 47.1% read-heavy, 3.97% read-only, 14.93% write-only; reads up to ~2500k, writes up to ~12k)")
	return nil
}

// perOp runs traced campaigns and breaks outcomes down by the opcode each
// fault actually hit.
func perOp(out io.Writer, o options) error {
	for _, name := range []string{"lud", "clamr", "matvec"} {
		app, err := apps.ByName(name)
		if err != nil {
			return err
		}
		sum, err := campaign.Run(o.instrument(campaign.Config{
			Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
			Ops: app.DefaultOps, TargetRank: app.TargetRank,
			Runs: o.runs, Bits: o.bits, Seed: o.seed, Trace: true, Parallel: o.parallel,
		}))
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprint(out, sum.PerOpReport())
	}
	return nil
}

// jsonOut runs the Fig. 6 campaigns (with tracing) and emits one JSON
// summary per application, for external plotting tools.
func jsonOut(out io.Writer, o options) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	for _, app := range apps.All() {
		sum, err := campaign.Run(o.instrument(campaign.Config{
			Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
			Ops: app.DefaultOps, TargetRank: app.TargetRank,
			Runs: o.runs, Bits: o.bits, Seed: o.seed, Trace: true, Parallel: o.parallel,
		}))
		if err != nil {
			return fmt.Errorf("%s: %w", app.Name, err)
		}
		if err := enc.Encode(sum); err != nil {
			return err
		}
	}
	return nil
}

// sweep runs the bit-count ablation: the same CLAMR campaign at 1, 2, 4, 8
// and 16 flipped bits per injection.
func sweep(out io.Writer, o options) error {
	app, err := apps.ByName("clamr")
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "=== Ablation: outcome vs. flipped bits per injection (CLAMR) ===")
	results, err := campaign.BitSweep(o.instrument(campaign.Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0,
		Runs: o.runs, Seed: o.seed, Parallel: o.parallel,
		InjectExec: o.injectExec, NoFork: o.noFork,
		SnapshotCacheBytes: o.snapCacheMB << 20,
	}), []int{1, 2, 4, 8, 16})
	if err != nil {
		return err
	}
	fmt.Fprint(out, campaign.SweepTable(results))
	fmt.Fprintln(out, "(wider flips are less often benign and more often detected)")
	return nil
}

// runResumable runs one fault-tolerant campaign: a single application with the
// robustness features wired up — per-run wall-clock watchdog, optional
// shared TaintHub over TCP with retry/reconnect, a checkpoint journal, and
// SIGINT/SIGTERM-triggered graceful interruption that can later be resumed
// with -resume.
func runResumable(out io.Writer, o options) error {
	app, err := apps.ByName(o.app)
	if err != nil {
		return err
	}
	cfg := campaign.Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: app.TargetRank,
		Runs: o.runs, Bits: o.bits, Seed: o.seed, Trace: true, Parallel: o.parallel,
		RunTimeout: o.runTimeout, HubPolicy: o.hubPolicy,
		Journal: o.journal, Resume: o.resume,
		InjectExec: o.injectExec, NoFork: o.noFork,
		SnapshotCacheBytes: o.snapCacheMB << 20,
	}
	if o.hubAddr != "" {
		// Generous retry budget: a durable hub restarting from its WAL
		// (crash, redeploy) is reachable again within seconds, and riding
		// that out beats failing half a campaign's runs.
		client, err := tainthub.DialConfig(o.hubAddr, tainthub.ClientConfig{
			MaxAttempts: 12,
			Wire:        o.hubWire,
		})
		if err != nil {
			return fmt.Errorf("connecting to taint hub: %w", err)
		}
		defer client.Close()
		cfg.Hub = client
	}

	// First SIGINT/SIGTERM stops feeding new runs; in-flight runs finish and
	// are journaled. A second signal falls through to the default handler
	// (hard kill), so a wedged campaign can still be ended.
	stop := make(chan struct{})
	cfg.Stop = stop
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	finished := make(chan struct{})
	defer close(finished)
	go func() {
		select {
		case <-sigc:
			signal.Stop(sigc)
			close(stop)
		case <-finished:
		}
	}()

	sum, err := campaign.Run(o.instrument(cfg))
	if errors.Is(err, campaign.ErrInterrupted) {
		journal := cfg.Journal
		if journal == "" {
			journal = cfg.Resume
		}
		if journal == "" {
			fmt.Fprintln(out, "campaign interrupted; no -journal was set, completed runs are lost")
			return nil
		}
		fmt.Fprintf(out, "campaign interrupted; completed runs journaled to %s\n", journal)
		fmt.Fprintf(out, "resume with: campaign -experiment run -app %s -runs %d -seed %d -resume %s\n",
			o.app, o.runs, o.seed, journal)
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Fprint(out, sum.Report())
	return nil
}

// submitCampaign posts one experiment spec to a chaserd control plane and
// prints the assigned campaign ID. The spec mirrors what -experiment run
// would execute standalone (Trace on), so a sharded campaign's merged
// summary is comparable — bitwise — with the single-process one.
func submitCampaign(out io.Writer, o options) error {
	if o.chaserd == "" {
		return fmt.Errorf("-experiment submit requires -chaserd URL")
	}
	cl := server.NewClient(o.chaserd)
	id, err := cl.Submit(server.Spec{
		Tenant:       o.tenant,
		App:          o.app,
		Runs:         o.runs,
		Seed:         o.seed,
		Bits:         o.bits,
		Shards:       o.shards,
		Trace:        true,
		Parallel:     o.parallel,
		RunTimeoutMs: o.runTimeout.Milliseconds(),
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, id)
	fmt.Fprintf(os.Stderr, "campaign: submitted; watch with: campaign -experiment watch -chaserd %s -campaign %s\n",
		o.chaserd, id)
	return nil
}

// watchCampaign long-polls a chaserd until the campaign completes, then
// prints the merged report — the exact text -experiment run would have
// printed for an uninterrupted local campaign.
func watchCampaign(out io.Writer, o options) error {
	if o.chaserd == "" || o.campaignID == "" {
		return fmt.Errorf("-experiment watch requires -chaserd URL and -campaign ID")
	}
	cl := server.NewClient(o.chaserd)
	doc, err := cl.WaitSummary(o.campaignID)
	if err != nil {
		return err
	}
	fmt.Fprint(out, doc.Report)
	return nil
}

// fig10 measures the performance overhead of injection and tracing for
// Matvec and CLAMR.
func fig10(out io.Writer, o options) error {
	fmt.Fprintln(out, "=== Fig. 10: performance overhead (normalized) ===")
	for _, name := range []string{"matvec", "clamr"} {
		app, err := apps.ByName(name)
		if err != nil {
			return err
		}
		rank := app.TargetRank
		if rank < 0 {
			rank = 0
		}
		// The paper's overhead configuration targets a single instruction
		// ("the fadd instruction after it has been executed 1000 times"),
		// not a whole opcode class.
		ops := []isa.Op{isa.OpFAdd}
		if name == "matvec" {
			ops = []isa.Op{isa.OpLd}
		}
		res, err := campaign.MeasureOverhead(campaign.OverheadConfig{
			Prog: app.Prog, WorldSize: app.WorldSize, Ops: ops,
			N: 1000, Reps: 5, Seed: o.seed, TargetRank: rank,
		})
		if err != nil {
			return err
		}
		norm := func(d, base float64) float64 { return d / base }
		base := float64(res.Baseline)
		fmt.Fprintf(out, "%-8s baseline=%v\n", name, res.Baseline)
		fmt.Fprintf(out, "  inject-off/trace-off: %.3f\n", norm(float64(res.Baseline), base))
		fmt.Fprintf(out, "  inject-on /trace-off: %.3f (injection overhead %.1f%%)\n",
			norm(float64(res.InjectOnly), base), res.InjectOverheadPct())
		fmt.Fprintf(out, "  inject-off/trace-on : %.3f\n", norm(float64(res.TraceOnly), base))
		fmt.Fprintf(out, "  inject-on /trace-on : %.3f (tracing overhead %.1f%%)\n",
			norm(float64(res.InjectAndTrace), base), res.TraceOverheadPct())
	}
	fmt.Fprintln(out, "(paper: CLAMR tracing overhead ~15.7%, injection ~0-2.2%)")
	_ = stats.Pct // keep the dependency explicit for report helpers
	return nil
}
