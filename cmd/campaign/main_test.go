package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runExp(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return sb.String()
}

func TestTable1(t *testing.T) {
	out := runExp(t, "-experiment", "table1")
	for _, want := range []string{"Probabilistic", "Deterministic", "Group"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	out := runExp(t, "-experiment", "table2")
	for _, want := range []string{"Probabilistic Injector", "Deterministic Injector", "Group Injector", "LOC"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Small(t *testing.T) {
	out := runExp(t, "-experiment", "table3", "-runs", "40")
	for _, want := range []string{"OS Exceptions", "MPI error detected", "Slave Node failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Small(t *testing.T) {
	out := runExp(t, "-experiment", "fig6", "-runs", "15")
	for _, want := range []string{"bfs", "clamr", "kmeans", "lud", "matvec", "benign", "terminated"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFig7(t *testing.T) {
	out := runExp(t, "-experiment", "fig7")
	if !strings.Contains(out, "tainted bytes") || !strings.Contains(out, "case 2") {
		t.Errorf("fig7 output incomplete:\n%s", out)
	}
}

func TestFig8Small(t *testing.T) {
	out := runExp(t, "-experiment", "fig8", "-runs", "15")
	for _, want := range []string{"Fig. 8", "Fig. 9", "read-heavy"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFig10(t *testing.T) {
	out := runExp(t, "-experiment", "fig10")
	for _, want := range []string{"matvec", "clamr", "tracing overhead", "injection overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "zap"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSweepSmall(t *testing.T) {
	out := runExp(t, "-experiment", "sweep", "-runs", "10")
	for _, want := range []string{"bits", "benign", "16"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestPerOpSmall(t *testing.T) {
	out := runExp(t, "-experiment", "perop", "-runs", "15")
	if !strings.Contains(out, "outcomes by injected opcode") {
		t.Errorf("missing header:\n%s", out)
	}
}

func TestJSONSmall(t *testing.T) {
	out := runExp(t, "-experiment", "json", "-runs", "5")
	dec := json.NewDecoder(strings.NewReader(out))
	apps := 0
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("bad json: %v", err)
		}
		apps++
	}
	if apps < 5 {
		t.Errorf("json summaries = %d", apps)
	}
}

func TestRunJournalAndResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	full := runExp(t, "-experiment", "run", "-app", "kmeans", "-runs", "12",
		"-seed", "77", "-journal", journal)
	if !strings.Contains(full, "benign") {
		t.Fatalf("no summary:\n%s", full)
	}
	// Resuming from a complete journal re-executes nothing and reprints the
	// identical summary.
	resumed := runExp(t, "-experiment", "run", "-app", "kmeans", "-runs", "12",
		"-seed", "77", "-resume", journal)
	if resumed != full {
		t.Errorf("resumed summary differs:\n--- full ---\n%s--- resumed ---\n%s", full, resumed)
	}
}

func TestRunBadHubPolicy(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "run", "-hub-policy", "maybe"}, &sb); err == nil {
		t.Error("bad hub policy accepted")
	}
}

func TestFig6CSVExport(t *testing.T) {
	dir := t.TempDir()
	out := runExp(t, "-experiment", "fig6", "-runs", "6", "-csv", dir)
	if !strings.Contains(out, "per-run outcomes written") {
		t.Errorf("no csv note:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "bfs.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "outcome") || len(strings.Split(string(data), "\n")) < 7 {
		t.Errorf("csv content:\n%s", data)
	}
}
