package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const demoSrc = `
; sum 1..5 and print it
.data
banner: .ascii "sum:\n"
.text
main:
    movi r1, banner
    movi r2, 5
    syscall print_str
    movi r4, 0
    movi r5, 5
loop:
    add r4, r4, r5
    addi r5, r5, -1
    cmpi r5, 0
    jg loop
    mov r1, r4
    syscall print_int
    movi r1, 0
    syscall exit
`

func writeDemo(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "demo.s")
	if err := os.WriteFile(path, []byte(demoSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDisassemble(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-dis", writeDemo(t)}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"movi r1,", "add r4, r4, r5", "syscall 1"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("disassembly missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunProgram(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", writeDemo(t)}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "sum:\n15\n") {
		t.Errorf("console output wrong:\n%s", out)
	}
	if !strings.Contains(out, "exited(0)") {
		t.Errorf("termination missing:\n%s", out)
	}
}

func TestRunWithTaint(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "-taint", writeDemo(t)}, &sb); err != nil {
		t.Fatal(err)
	}
}

func TestAbnormalExit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.s")
	if err := os.WriteFile(path, []byte("main:\n movi r1, 1\n movi r2, 0\n div r3, r1, r2\n hlt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run([]string{"-run", path}, &sb)
	if err == nil || !strings.Contains(err.Error(), "abnormal") {
		t.Errorf("err = %v", err)
	}
	if !strings.Contains(sb.String(), "SIGFPE") {
		t.Errorf("output missing signal:\n%s", sb.String())
	}
}

func TestArgErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no file accepted")
	}
	if err := run([]string{"/nonexistent.s"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "syntax.s")
	if err := os.WriteFile(bad, []byte("main:\n bogus\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &sb); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestLangMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prog.gl")
	src := `
func main() {
	total := 0
	for i := 1; i < 11; i = i + 1 {
		total = total + i
	}
	print(total)
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-run", "-lang", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "55\n") {
		t.Errorf("output:\n%s", sb.String())
	}
	// Parse errors surface.
	bad := filepath.Join(t.TempDir(), "bad.gl")
	if err := os.WriteFile(bad, []byte("func main() { x = }"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "-lang", bad}, &sb); err == nil {
		t.Error("parse error swallowed")
	}
}
