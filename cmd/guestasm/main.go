// Command guestasm assembles, disassembles, and runs standalone guest
// programs for the Chaser virtual machine.
//
// Usage:
//
//	guestasm -dis prog.s          # assemble and print the disassembly
//	guestasm -run prog.s          # assemble and execute
//	guestasm -run -taint prog.s   # execute with taint tracking enabled
//	guestasm -run -lang prog.gl   # compile guest-language source and execute
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"chaser/internal/asm"
	"chaser/internal/isa"
	"chaser/internal/lang"
	"chaser/internal/vm"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "guestasm:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("guestasm", flag.ContinueOnError)
	dis := fs.Bool("dis", false, "print disassembly")
	exec := fs.Bool("run", false, "execute the program")
	taint := fs.Bool("taint", false, "enable taint tracking during -run")
	langSrc := fs.Bool("lang", false, "treat the input as guest-language source instead of assembly")
	budget := fs.Uint64("max-instructions", 0, "instruction budget (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: guestasm [-dis] [-run] [-taint] <file.s>")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var prog *isa.Program
	if *langSrc {
		prog, err = lang.ParseAndCompile(fs.Arg(0), string(src))
	} else {
		prog, err = asm.Assemble(fs.Arg(0), string(src))
	}
	if err != nil {
		return err
	}
	if *dis || !*exec {
		fmt.Fprint(out, prog.Disassemble())
	}
	if !*exec {
		return nil
	}
	m := vm.New(prog, vm.Config{MaxInstructions: *budget})
	m.TaintEnabled = *taint
	term := m.Run()
	if s := m.Console(); s != "" {
		fmt.Fprint(out, s)
	}
	c := m.Counters()
	fmt.Fprintf(out, "-- %s | %d instructions, %d TBs, %d syscalls\n",
		term, c.Instructions, c.TBsExecuted, c.Syscalls)
	if o := m.Output(); len(o) > 0 {
		fmt.Fprintf(out, "-- output file: %d bytes\n", len(o))
	}
	if term.Abnormal() {
		return fmt.Errorf("guest terminated abnormally: %s", term)
	}
	return nil
}
