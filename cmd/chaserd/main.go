// Command chaserd runs the campaign control plane and its workers.
//
// Server mode (default) accepts experiment specs over HTTP, shards each
// campaign, and schedules the shards across workers under expiring leases,
// persisting every state transition in a crash-safe store so a restarted
// chaserd resumes exactly where it died:
//
//	chaserd -addr 127.0.0.1:7070 -store /var/lib/chaserd
//	chaserd -store ./state -pool 2              # plus 2 in-process workers
//	chaserd -store ./state -hubs hub1:7071,hub2:7071
//
// Worker mode (-worker) claims shards from a chaserd and executes them,
// heartbeating its leases; any number of workers may point at one server,
// across machines:
//
//	chaserd -worker -connect http://127.0.0.1:7070 -name w1
//
// SIGTERM/SIGINT shut either mode down gracefully: the server drains HTTP
// and closes its store (campaign state is durable); a worker finishes its
// current shard first — or, killed harder, simply stops heartbeating and
// the server re-enqueues its shard after the lease expires.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chaser/internal/obs"
	"chaser/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chaserd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("chaserd", flag.ContinueOnError)
	// Server mode.
	addr := fs.String("addr", "127.0.0.1:7070", "listen address (server mode)")
	storeDir := fs.String("store", "", "durable state directory (server mode; required)")
	pool := fs.Int("pool", 0, "in-process workers to run alongside the server (single-binary mode)")
	hubs := fs.String("hubs", "", "comma-separated TaintHub addresses; campaigns are hashed across them (empty = private in-process hubs)")
	leaseTTL := fs.Duration("lease-ttl", 15*time.Second, "shard lease duration; a worker silent this long loses its shard")
	maxRetries := fs.Int("max-retries", 3, "shard re-enqueues before quarantine")
	defaultShards := fs.Int("default-shards", 0, "shard count for specs that leave it unset (0 = built-in default)")
	maxActive := fs.Int("tenant-max-active", 0, "active campaigns per tenant (0 = default)")
	ratePerSec := fs.Float64("tenant-rate", 0, "sustained submissions/s per tenant (0 = default)")
	burst := fs.Int("tenant-burst", 0, "submission burst per tenant (0 = default)")
	// Worker mode.
	worker := fs.Bool("worker", false, "run as a worker instead of a server")
	connect := fs.String("connect", "", "chaserd URL to claim shards from (worker mode)")
	name := fs.String("name", "", "worker name in server logs and shard status (default worker-<pid>)")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle claim retry interval (worker mode)")
	idleExit := fs.Duration("idle-exit", 0, "exit after this long without claimable work (worker mode; 0 = run forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	if *worker {
		return runWorker(*connect, *name, *poll, *idleExit, sigc)
	}
	return runServer(serverOpts{
		addr: *addr, storeDir: *storeDir, pool: *pool, hubs: *hubs,
		leaseTTL: *leaseTTL, maxRetries: *maxRetries, defaultShards: *defaultShards,
		maxActive: *maxActive, ratePerSec: *ratePerSec, burst: *burst,
	}, sigc)
}

type serverOpts struct {
	addr, storeDir, hubs     string
	pool, maxRetries         int
	defaultShards, maxActive int
	burst                    int
	ratePerSec               float64
	leaseTTL                 time.Duration
}

func runServer(o serverOpts, sigc <-chan os.Signal) error {
	if o.storeDir == "" {
		return fmt.Errorf("server mode requires -store DIR")
	}
	var hubList []string
	if o.hubs != "" {
		for _, h := range strings.Split(o.hubs, ",") {
			if h = strings.TrimSpace(h); h != "" {
				hubList = append(hubList, h)
			}
		}
	}
	srv, err := server.NewServer(server.ServerConfig{
		Addr:     o.addr,
		StoreDir: o.storeDir,
		Obs:      obs.NewRegistry(),
		Sched: server.SchedConfig{
			LeaseTTL:        o.leaseTTL,
			MaxShardRetries: o.maxRetries,
			DefaultShards:   o.defaultShards,
			Hubs:            hubList,
		},
		Tenants: server.TenantLimits{
			MaxActive:  o.maxActive,
			RatePerSec: o.ratePerSec,
			Burst:      o.burst,
		},
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("chaserd listening on %s\n", srv.Addr())

	workers := make([]*server.Worker, o.pool)
	for i := range workers {
		workers[i] = server.NewWorker(server.WorkerConfig{
			Name:    fmt.Sprintf("pool-%d", i),
			Control: server.LocalControl{Sched: srv.Scheduler()},
			Obs:     srv.Registry(),
		})
		workers[i].Start()
	}

	sig := <-sigc
	fmt.Fprintf(os.Stderr, "chaserd: %s; shutting down\n", sig)
	for _, w := range workers {
		go w.Stop() // workers finish their current shard; don't serialize
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

func runWorker(connect, name string, poll, idleExit time.Duration, sigc <-chan os.Signal) error {
	if connect == "" {
		return fmt.Errorf("worker mode requires -connect URL")
	}
	w := server.NewWorker(server.WorkerConfig{
		Name:         name,
		Control:      server.NewClient(connect),
		PollInterval: poll,
		IdleExit:     idleExit,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run()
	}()
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "chaserd: %s; finishing current shard\n", sig)
		w.Stop()
		<-done
	case <-done:
	}
	return nil
}
