// Command chaserd runs the campaign control plane and its workers.
//
// Server mode (default) accepts experiment specs over HTTP, shards each
// campaign, and schedules the shards across workers under expiring leases,
// persisting every state transition in a crash-safe store so a restarted
// chaserd resumes exactly where it died:
//
//	chaserd -addr 127.0.0.1:7070 -store /var/lib/chaserd
//	chaserd -store ./state -pool 2              # plus 2 in-process workers
//	chaserd -store ./state -hubs hub1:7071,hub2:7071
//
// Worker mode (-worker) claims shards from a chaserd and executes them,
// heartbeating its leases; any number of workers may point at one server,
// across machines:
//
//	chaserd -worker -connect http://127.0.0.1:7070 -name w1
//
// HA mode pairs two servers over a shared fence file and data directory:
// whichever holds the fence lease leads, the other replicates the leader's
// WAL as a hot standby and promotes within about one -leader-ttl of the
// leader going silent. Workers and clients take the full peer list and
// fail over automatically:
//
//	chaserd -store ./a -data ./shared -fence-file ./shared/fence \
//	    -advertise http://127.0.0.1:7070 -addr 127.0.0.1:7070 \
//	    -peer http://127.0.0.1:7071 -role leader
//	chaserd -store ./b -data ./shared -fence-file ./shared/fence \
//	    -advertise http://127.0.0.1:7071 -addr 127.0.0.1:7071 \
//	    -peer http://127.0.0.1:7070 -role follower
//	chaserd -worker -connect http://127.0.0.1:7070,http://127.0.0.1:7071
//
// The -chaos flag (or CHASERD_CHAOS) arms the deterministic self-chaos
// harness: seeded fault injection at named sites inside the WAL, the
// replication stream and the fencer clock (see docs/ROBUSTNESS.md).
//
// SIGTERM/SIGINT shut either mode down gracefully: the server drains HTTP
// and closes its store (campaign state is durable); a worker finishes its
// current shard first — or, killed harder, simply stops heartbeating and
// the server re-enqueues its shard after the lease expires.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chaser/internal/obs"
	"chaser/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chaserd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("chaserd", flag.ContinueOnError)
	// Server mode.
	addr := fs.String("addr", "127.0.0.1:7070", "listen address (server mode)")
	storeDir := fs.String("store", "", "durable state directory (server mode; required)")
	pool := fs.Int("pool", 0, "in-process workers to run alongside the server (single-binary mode)")
	hubs := fs.String("hubs", "", "comma-separated TaintHub addresses; campaigns are hashed across them (empty = private in-process hubs)")
	leaseTTL := fs.Duration("lease-ttl", 15*time.Second, "shard lease duration; a worker silent this long loses its shard")
	maxRetries := fs.Int("max-retries", 3, "shard re-enqueues before quarantine")
	defaultShards := fs.Int("default-shards", 0, "shard count for specs that leave it unset (0 = built-in default)")
	maxActive := fs.Int("tenant-max-active", 0, "active campaigns per tenant (0 = default)")
	ratePerSec := fs.Float64("tenant-rate", 0, "sustained submissions/s per tenant (0 = default)")
	burst := fs.Int("tenant-burst", 0, "submission burst per tenant (0 = default)")
	// HA mode.
	dataDir := fs.String("data", "", "journals + summaries directory, shared between HA peers (empty = -store)")
	fenceFile := fs.String("fence-file", "", "shared fencing file; setting it enables HA leader election")
	peer := fs.String("peer", "", "the other HA node's base URL (replication source and redirect fallback)")
	advertise := fs.String("advertise", "", "this node's externally reachable base URL (default http://<addr>)")
	role := fs.String("role", "", "startup role bias: leader contends immediately, follower yields one TTL first")
	leaderTTL := fs.Duration("leader-ttl", 3*time.Second, "fence lease duration; a leader silent this long is deposed")
	fsync := fs.Bool("fsync", false, "fsync the WAL on every append")
	walSegment := fs.Int64("wal-segment", 0, "WAL segment rotation threshold in bytes (0 = 1 MiB default)")
	chaosSpec := fs.String("chaos", os.Getenv("CHASERD_CHAOS"), "self-chaos spec, e.g. seed=42,rate=0.05,sites=wal.short_write+repl.drop_frame (default $CHASERD_CHAOS)")
	// Worker mode.
	worker := fs.Bool("worker", false, "run as a worker instead of a server")
	connect := fs.String("connect", "", "chaserd URL to claim shards from (worker mode)")
	name := fs.String("name", "", "worker name in server logs and shard status (default worker-<pid>)")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle claim retry interval (worker mode)")
	idleExit := fs.Duration("idle-exit", 0, "exit after this long without claimable work (worker mode; 0 = run forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	if *worker {
		return runWorker(*connect, *name, *poll, *idleExit, sigc)
	}
	return runServer(serverOpts{
		addr: *addr, storeDir: *storeDir, pool: *pool, hubs: *hubs,
		leaseTTL: *leaseTTL, maxRetries: *maxRetries, defaultShards: *defaultShards,
		maxActive: *maxActive, ratePerSec: *ratePerSec, burst: *burst,
		dataDir: *dataDir, fenceFile: *fenceFile, peer: *peer, advertise: *advertise,
		role: *role, leaderTTL: *leaderTTL, fsync: *fsync, chaos: *chaosSpec,
		walSegment: *walSegment,
	}, sigc)
}

type serverOpts struct {
	addr, storeDir, hubs     string
	pool, maxRetries         int
	defaultShards, maxActive int
	burst                    int
	ratePerSec               float64
	leaseTTL                 time.Duration

	dataDir, fenceFile, peer string
	advertise, role, chaos   string
	leaderTTL                time.Duration
	walSegment               int64
	fsync                    bool
}

func runServer(o serverOpts, sigc <-chan os.Signal) error {
	if o.storeDir == "" {
		return fmt.Errorf("server mode requires -store DIR")
	}
	var hubList []string
	if o.hubs != "" {
		for _, h := range strings.Split(o.hubs, ",") {
			if h = strings.TrimSpace(h); h != "" {
				hubList = append(hubList, h)
			}
		}
	}
	chaos, err := server.ParseChaos(o.chaos)
	if err != nil {
		return err
	}
	srv, err := server.NewServer(server.ServerConfig{
		Addr:     o.addr,
		StoreDir: o.storeDir,
		DataDir:  o.dataDir,
		Obs:      obs.NewRegistry(),
		Sched: server.SchedConfig{
			LeaseTTL:        o.leaseTTL,
			MaxShardRetries: o.maxRetries,
			DefaultShards:   o.defaultShards,
			Hubs:            hubList,
		},
		Tenants: server.TenantLimits{
			MaxActive:  o.maxActive,
			RatePerSec: o.ratePerSec,
			Burst:      o.burst,
		},
		FenceFile:       o.fenceFile,
		Peer:            o.peer,
		AdvertiseURL:    o.advertise,
		LeaderTTL:       o.leaderTTL,
		RolePreference:  o.role,
		WALSegmentBytes: o.walSegment,
		Fsync:           o.fsync,
		Chaos:           chaos,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("chaserd listening on %s\n", srv.Addr())

	workers := make([]*server.Worker, o.pool)
	for i := range workers {
		// Over HTTP (not LocalControl) so pool workers survive this node
		// being an HA follower and follow redirects to the leader.
		control := server.Control(server.LocalControl{Sched: srv.Scheduler()})
		if o.fenceFile != "" {
			peers := srv.Advertise()
			if o.peer != "" {
				peers += "," + o.peer
			}
			control = server.NewClient(peers)
		}
		workers[i] = server.NewWorker(server.WorkerConfig{
			Name:    fmt.Sprintf("pool-%d", i),
			Control: control,
			Obs:     srv.Registry(),
		})
		workers[i].Start()
	}

	sig := <-sigc
	fmt.Fprintf(os.Stderr, "chaserd: %s; shutting down\n", sig)
	for _, w := range workers {
		go w.Stop() // workers finish their current shard; don't serialize
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

func runWorker(connect, name string, poll, idleExit time.Duration, sigc <-chan os.Signal) error {
	if connect == "" {
		return fmt.Errorf("worker mode requires -connect URL (comma-separated for an HA pair)")
	}
	w := server.NewWorker(server.WorkerConfig{
		Name:         name,
		Control:      server.NewClient(connect),
		PollInterval: poll,
		IdleExit:     idleExit,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run()
	}()
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "chaserd: %s; finishing current shard\n", sig)
		w.Stop()
		<-done
	case <-done:
	}
	return nil
}
